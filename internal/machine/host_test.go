package machine

import (
	"runtime"
	"strings"
	"testing"
)

func TestHostFingerprint(t *testing.T) {
	h := Host()
	if h.OS != runtime.GOOS || h.Arch != runtime.GOARCH || h.NumCPU != runtime.NumCPU() {
		t.Errorf("Host() = %+v, want current runtime values", h)
	}
	fp := h.Fingerprint()
	for _, part := range []string{runtime.GOOS, runtime.GOARCH, "cpu"} {
		if !strings.Contains(fp, part) {
			t.Errorf("Fingerprint %q missing %q", fp, part)
		}
	}
	if a, b := Host().Fingerprint(), Host().Fingerprint(); a != b {
		t.Errorf("Fingerprint not stable: %q vs %q", a, b)
	}
}
