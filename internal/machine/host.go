package machine

import (
	"fmt"
	"runtime"
)

// HostInfo fingerprints the machine a measurement ran on. Performance
// snapshots (internal/benchfmt) embed it so an analyzer can refuse — or at
// least flag — comparisons across hosts: a pseudo-Mflop/s delta between a
// 2-vCPU container and an 8-core workstation is hardware, not a regression.
type HostInfo struct {
	// OS and Arch are runtime.GOOS / runtime.GOARCH.
	OS   string `json:"os"`
	Arch string `json:"arch"`
	// NumCPU is runtime.NumCPU() at capture time (the container's visible
	// CPU count, not the physical machine's).
	NumCPU int `json:"num_cpu"`
}

// Host captures the current host's fingerprint.
func Host() HostInfo {
	return HostInfo{
		OS:     runtime.GOOS,
		Arch:   runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
	}
}

// Fingerprint renders the host as one comparable token, e.g.
// "linux/amd64/2cpu".
func (h HostInfo) Fingerprint() string {
	return fmt.Sprintf("%s/%s/%dcpu", h.OS, h.Arch, h.NumCPU)
}
