package machine

import (
	"testing"
)

// modelCrossover returns the smallest logN in [6,20] where the parallel
// series beats the sequential series by at least 2%, or 99 if never.
func modelCrossover(pl Platform, par, seq Series) int {
	for logN := 6; logN <= 20; logN++ {
		if pl.Predict(par, logN) > 1.02*pl.Predict(seq, logN) {
			return logN
		}
	}
	return 99
}

func TestPlatformLookup(t *testing.T) {
	if len(Platforms()) != 4 {
		t.Fatalf("platforms = %d", len(Platforms()))
	}
	for _, key := range []string{"coreduo", "pentiumd", "opteron", "xeonmp"} {
		p, ok := ByKey(key)
		if !ok || p.Key != key {
			t.Errorf("ByKey(%q) failed", key)
		}
	}
	if _, ok := ByKey("cray"); ok {
		t.Error("ByKey accepted unknown platform")
	}
}

func TestSeriesNames(t *testing.T) {
	want := []string{"Spiral pthreads", "Spiral OpenMP", "Spiral sequential", "FFTW pthreads", "FFTW sequential"}
	for i, s := range AllSeries() {
		if s.String() != want[i] {
			t.Errorf("series %d = %q, want %q", i, s.String(), want[i])
		}
	}
}

func TestPredictionsArePositiveAndFinite(t *testing.T) {
	for _, pl := range Platforms() {
		for _, s := range AllSeries() {
			for logN := 6; logN <= 20; logN++ {
				v := pl.Predict(s, logN)
				if v <= 0 || v > 1e6 {
					t.Fatalf("%s/%s/2^%d: %v", pl.Key, s, logN, v)
				}
			}
		}
	}
}

// TestModelSpiralSequentialWithinTenPercentOfFFTW is claim E8 on the model:
// the two sequential libraries run within 10% of each other.
func TestModelSpiralSequentialWithinTenPercentOfFFTW(t *testing.T) {
	for _, pl := range Platforms() {
		for logN := 6; logN <= 20; logN++ {
			sp := pl.Predict(SpiralSeq, logN)
			fw := pl.Predict(FFTWSeq, logN)
			ratio := sp / fw
			if ratio < 0.9 || ratio > 1.12 {
				t.Errorf("%s 2^%d: Spiral/FFTW sequential ratio %.3f", pl.Key, logN, ratio)
			}
		}
	}
}

// TestModelEarlyPoolCrossover is claim E7 on the model: pooled Spiral
// parallelizes profitably at small, in-cache sizes (the paper demonstrates
// 2^8 on the Core Duo) while the FFTW strategy needs thousands of points
// (2^13 in the paper).
func TestModelEarlyPoolCrossover(t *testing.T) {
	for _, pl := range Platforms() {
		pool := modelCrossover(pl, SpiralPool, SpiralSeq)
		fftw := modelCrossover(pl, FFTWPar, FFTWSeq)
		if pool >= fftw {
			t.Errorf("%s: pool crossover 2^%d not earlier than FFTW 2^%d", pl.Key, pool, fftw)
		}
		if pool > 11 {
			t.Errorf("%s: pool crossover 2^%d too late", pl.Key, pool)
		}
		if fftw < 12 {
			t.Errorf("%s: FFTW crossover 2^%d too early for a spawn-per-transform strategy", pl.Key, fftw)
		}
	}
	// On the on-chip Core Duo the model must parallelize within L1-resident
	// sizes (the paper's headline: speedup already at 2^8).
	if c := modelCrossover(CoreDuo, SpiralPool, SpiralSeq); c > 9 {
		t.Errorf("Core Duo pool crossover 2^%d, paper shows 2^8", c)
	}
}

// TestModelSpawnBetweenPoolAndFFTW: the OpenMP-style (spawn) Spiral series
// must parallelize later than the pooled series (that is the entire point
// of thread pooling) but its µ-aware schedule keeps it ahead of FFTW-style
// parallelization.
func TestModelSpawnBetweenPoolAndFFTW(t *testing.T) {
	for _, pl := range Platforms() {
		pool := modelCrossover(pl, SpiralPool, SpiralSeq)
		spawn := modelCrossover(pl, SpiralSpawn, SpiralSeq)
		fftw := modelCrossover(pl, FFTWPar, FFTWSeq)
		if !(pool <= spawn && spawn <= fftw) {
			t.Errorf("%s: crossover order pool=%d spawn=%d fftw=%d", pl.Key, pool, spawn, fftw)
		}
	}
}

// TestModelParallelSpeedupAtPeak: at large in-cache sizes the pooled
// parallel series must show a clear speedup over sequential on every
// platform (Figure 3's separation of the top lines).
func TestModelParallelSpeedupAtPeak(t *testing.T) {
	for _, pl := range Platforms() {
		logN := 12
		speedup := pl.Predict(SpiralPool, logN) / pl.Predict(SpiralSeq, logN)
		if speedup < 1.4 {
			t.Errorf("%s: speedup %.2f at 2^%d", pl.Key, speedup, logN)
		}
		if speedup > float64(pl.P)+0.01 {
			t.Errorf("%s: speedup %.2f exceeds p=%d", pl.Key, speedup, pl.P)
		}
	}
}

// TestModelOnChipBeatsBusSync: the two genuine multicore machines (Core Duo,
// Opteron — fast on-chip communication) must parallelize earlier than the
// bus-based machines of the same processor count (Pentium D, Xeon MP),
// which is the paper's central architectural observation.
func TestModelOnChipBeatsBusSync(t *testing.T) {
	if modelCrossover(CoreDuo, SpiralPool, SpiralSeq) > modelCrossover(PentiumD, SpiralPool, SpiralSeq) {
		t.Error("Core Duo should parallelize no later than Pentium D")
	}
	if modelCrossover(Opteron, SpiralPool, SpiralSeq) > modelCrossover(XeonMP, SpiralPool, SpiralSeq) {
		t.Error("Opteron should parallelize no later than Xeon MP")
	}
}

// TestModelMemoryRolloff: performance must fall off for out-of-cache sizes
// (the right side of every Figure-3 subplot).
func TestModelMemoryRolloff(t *testing.T) {
	for _, pl := range Platforms() {
		peak := 0.0
		for logN := 6; logN <= 16; logN++ {
			if v := pl.Predict(SpiralPool, logN); v > peak {
				peak = v
			}
		}
		tail := pl.Predict(SpiralPool, 20)
		if tail >= peak {
			t.Errorf("%s: no memory rolloff (peak %.0f, 2^20 %.0f)", pl.Key, peak, tail)
		}
	}
}

func TestPseudoMetric(t *testing.T) {
	// 1024-point transform in 2048 cycles at 2 GHz = 1.024 µs →
	// 5·1024·10 / 1.024 = 50000 pseudo-Mflop/s.
	got := CoreDuo.Pseudo(1024, 2048)
	if got < 49999 || got > 50001 {
		t.Errorf("Pseudo = %v, want 50000", got)
	}
	if CoreDuo.Pseudo(1024, 0) != 0 {
		t.Error("Pseudo(0 cycles) should be 0")
	}
}
