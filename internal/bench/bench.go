// Package bench is the experiment harness that regenerates the paper's
// evaluation (Figure 3 and the quantified claims of Sections 1 and 4).
//
// Two data sources feed the same reporting pipeline:
//
//   - RunMeasured: real wall-clock measurements on the host machine, running
//     the five series of Figure 3 (Spiral pthreads/OpenMP/sequential, FFTW
//     pthreads/sequential) over a log2-size sweep;
//   - RunModeled: the analytic platform model of internal/machine for the
//     paper's four machines (Core Duo, Opteron, Pentium D, Xeon MP).
//
// Output is the paper's pseudo-Mflop/s metric, 5·N·log2(N)/t[µs], rendered
// as a table, an ASCII chart (one per Figure-3 subplot), or CSV.
package bench

import (
	"fmt"
	"strings"
	"time"

	"spiralfft/internal/baseline"
	"spiralfft/internal/complexvec"
	"spiralfft/internal/exec"
	"spiralfft/internal/machine"
	"spiralfft/internal/search"
	"spiralfft/internal/smp"
)

// PseudoMflops converts a runtime into the paper's metric.
func PseudoMflops(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return exec.FlopCount(n) / (float64(d.Nanoseconds()) / 1000.0)
}

// Point is one (log2 size, performance) sample.
type Point struct {
	LogN   int
	Mflops float64
}

// SeriesData is one line of a Figure-3 subplot.
type SeriesData struct {
	Name   string
	Points []Point
}

// At returns the series value at logN (0 if absent).
func (s SeriesData) At(logN int) float64 {
	for _, p := range s.Points {
		if p.LogN == logN {
			return p.Mflops
		}
	}
	return 0
}

// Result is a full subplot: five series over a size sweep.
type Result struct {
	Title  string
	Series []SeriesData
	// FFTWThreads records, per logN, how many threads the FFTW-style
	// planner actually chose (measured runs only) — the paper's "FFTW
	// starts using the second processor at ..." is read off this.
	FFTWThreads []Point
}

// Get returns the named series.
func (r Result) Get(name string) (SeriesData, bool) {
	for _, s := range r.Series {
		if s.Name == name {
			return s, true
		}
	}
	return SeriesData{}, false
}

// Crossover returns the smallest logN at which series a exceeds series b by
// the given factor (e.g. 1.02 for "2% faster"), or -1 if never.
func Crossover(a, b SeriesData, factor float64) int {
	for _, p := range a.Points {
		vb := b.At(p.LogN)
		if vb > 0 && p.Mflops > factor*vb {
			return p.LogN
		}
	}
	return -1
}

// FFTWThreadCrossover returns the smallest measured logN at which the
// FFTW-style planner chose more than one thread, or -1 if it never did.
func (r Result) FFTWThreadCrossover() int {
	for _, p := range r.FFTWThreads {
		if p.Mflops > 1 {
			return p.LogN
		}
	}
	return -1
}

// Config controls a measured run.
type Config struct {
	// MinLogN and MaxLogN bound the sweep (inclusive); defaults 6 and 16.
	MinLogN, MaxLogN int
	// P is the worker count for the parallel series (default 2).
	P int
	// Mu is the cache-line length in complex elements (default 4).
	Mu int
	// Timer configures the measurements.
	Timer search.TimerConfig
	// Tune selects measured-DP tree tuning for the Spiral series (slower
	// planning, faster plans). Default: fixed radix trees.
	Tune bool
	// Verbose, when set, receives progress lines.
	Verbose func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MinLogN == 0 {
		c.MinLogN = 6
	}
	if c.MaxLogN == 0 {
		c.MaxLogN = 16
	}
	if c.P == 0 {
		c.P = 2
	}
	if c.Mu == 0 {
		c.Mu = 4
	}
	if c.Verbose == nil {
		c.Verbose = func(string, ...any) {}
	}
	return c
}

// RunMeasured measures the five Figure-3 series on the host.
func RunMeasured(cfg Config) Result {
	cfg = cfg.withDefaults()
	tuner := search.NewTuner(search.StrategyDP)
	tuner.Timer = cfg.Timer
	// Tree policy: fixed greedy radix by default (the library default), or
	// measured-DP tuning with -tune.
	treeFor := func(n int) *exec.Tree {
		if cfg.Tune {
			return tuner.BestTree(n).Tree
		}
		return exec.RadixTree(n)
	}

	res := Result{Title: fmt.Sprintf("host, p=%d, µ=%d", cfg.P, cfg.Mu)}
	series := map[string]*SeriesData{}
	names := []string{"Spiral pthreads", "Spiral OpenMP", "Spiral sequential", "FFTW pthreads", "FFTW sequential"}
	for _, n := range names {
		series[n] = &SeriesData{Name: n}
	}

	pool := smp.NewPool(cfg.P)
	defer pool.Close()
	spawn := smp.NewSpawn(cfg.P)

	for logN := cfg.MinLogN; logN <= cfg.MaxLogN; logN++ {
		n := 1 << uint(logN)
		x := complexvec.Random(n, uint64(n))
		y := make([]complex128, n)

		seq := exec.MustNewSeq(treeFor(n))
		scratch := seq.NewScratch()
		dSeq := search.Measure(func() { seq.Transform(y, x, scratch) }, cfg.Timer)
		series["Spiral sequential"].Points = append(series["Spiral sequential"].Points, Point{logN, PseudoMflops(n, dSeq)})

		// Parallel Spiral plans (raw parallel performance at fixed p, so the
		// crossover with the sequential line is visible, as in Figure 3).
		for _, bk := range []struct {
			name    string
			backend smp.Backend
		}{{"Spiral pthreads", pool}, {"Spiral OpenMP", spawn}} {
			mflops := 0.0
			if m, ok := exec.SplitFor(n, cfg.P, cfg.Mu); ok {
				pl, err := exec.NewParallel(n, m, exec.ParallelConfig{
					P: cfg.P, Mu: cfg.Mu, Backend: bk.backend,
					LeftTree: treeFor(m), RightTree: treeFor(n / m),
				})
				if err == nil {
					d := search.Measure(func() { pl.Transform(y, x) }, cfg.Timer)
					mflops = PseudoMflops(n, d)
				}
			} else {
				// No admissible split: the best "parallel" library can do is
				// run its sequential plan.
				mflops = PseudoMflops(n, dSeq)
			}
			series[bk.name].Points = append(series[bk.name].Points, Point{logN, mflops})
		}

		// FFTW-like series: sequential, and best-of-threads (its planner
		// decides, like the paper's bench protocol).
		fwSeq, err := baseline.NewFFTWLike(n, baseline.FFTWConfig{MaxThreads: 1})
		if err == nil {
			d := search.Measure(func() { fwSeq.Transform(y, x) }, cfg.Timer)
			series["FFTW sequential"].Points = append(series["FFTW sequential"].Points, Point{logN, PseudoMflops(n, d)})
			fwSeq.Close()
		}
		fwPar, err := baseline.NewFFTWLike(n, baseline.FFTWConfig{MaxThreads: cfg.P, Mode: baseline.ModeMeasure})
		if err == nil {
			d := search.Measure(func() { fwPar.Transform(y, x) }, cfg.Timer)
			series["FFTW pthreads"].Points = append(series["FFTW pthreads"].Points, Point{logN, PseudoMflops(n, d)})
			res.FFTWThreads = append(res.FFTWThreads, Point{logN, float64(fwPar.Threads())})
			fwPar.Close()
		}
		cfg.Verbose("measured 2^%d", logN)
	}
	for _, name := range names {
		res.Series = append(res.Series, *series[name])
	}
	return res
}

// RunModeled evaluates the analytic platform model over the sweep.
func RunModeled(pl machine.Platform, minLogN, maxLogN int) Result {
	res := Result{Title: pl.Name}
	for _, s := range machine.AllSeries() {
		sd := SeriesData{Name: s.String()}
		for logN := minLogN; logN <= maxLogN; logN++ {
			sd.Points = append(sd.Points, Point{logN, pl.Predict(s, logN)})
		}
		res.Series = append(res.Series, sd)
	}
	return res
}

// longest returns the series with the most points. Rendering is driven by
// it rather than Series[0]: the series of a measured run can be ragged (a
// family that failed to build at some size contributes fewer points), and
// sizing the output off the first series either dropped rows (Table, CSV)
// or wrote past the grid (Chart) when a later series was longer.
func (r Result) longest() SeriesData {
	var best SeriesData
	for _, s := range r.Series {
		if len(s.Points) > len(best.Points) {
			best = s
		}
	}
	return best
}

// DispatchCost times one no-op parallel region through a backend, returning
// the best (minimum) per-region time over trials — min is robust against
// scheduler hiccups, which is what made end-to-end comparisons flaky. Both
// the hermetic A1 test and benchsnap's dispatch-cost metric read it.
func DispatchCost(b smp.Backend, regions, trials int) time.Duration {
	noop := func(int) {}
	b.Run(noop) // warm up (pool workers may still be parking for the first region)
	best := time.Duration(1 << 62)
	for t := 0; t < trials; t++ {
		start := time.Now()
		for i := 0; i < regions; i++ {
			b.Run(noop)
		}
		if d := time.Since(start) / time.Duration(regions); d < best {
			best = d
		}
	}
	return best
}

// Table renders the result as an aligned text table (sizes down, series
// across), like the data behind one Figure-3 subplot.
func (r Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (pseudo Mflop/s = 5·N·log2(N)/t[µs]; higher is better)\n", r.Title)
	fmt.Fprintf(&b, "%-8s", "log2(N)")
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%-20s", s.Name)
	}
	b.WriteString("\n")
	for _, p := range r.longest().Points {
		fmt.Fprintf(&b, "%-8d", p.LogN)
		for _, s := range r.Series {
			fmt.Fprintf(&b, "%-20.0f", s.At(p.LogN))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders the result as comma-separated values with a header row.
func (r Result) CSV() string {
	var b strings.Builder
	b.WriteString("log2n")
	for _, s := range r.Series {
		fmt.Fprintf(&b, ",%s", strings.ReplaceAll(s.Name, " ", "_"))
	}
	b.WriteString("\n")
	for _, p := range r.longest().Points {
		fmt.Fprintf(&b, "%d", p.LogN)
		for _, s := range r.Series {
			fmt.Fprintf(&b, ",%.1f", s.At(p.LogN))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Chart renders an ASCII line chart of the result, one mark per series.
func (r Result) Chart(height int) string {
	if height < 5 {
		height = 16
	}
	marks := []byte{'P', 'O', 's', 'F', 'f'}
	maxV := 0.0
	for _, s := range r.Series {
		for _, p := range s.Points {
			if p.Mflops > maxV {
				maxV = p.Mflops
			}
		}
	}
	if maxV == 0 || len(r.Series) == 0 {
		return "(no data)\n"
	}
	// The x-axis comes from the longest series; each point maps to the
	// column of its LogN, so ragged series neither shift nor overflow the
	// grid (points at a size the axis lacks are skipped).
	axis := r.longest()
	cols := len(axis.Points)
	if cols == 0 {
		return "(no data)\n"
	}
	colOf := make(map[int]int, cols)
	for ci, p := range axis.Points {
		colOf[p.LogN] = ci
	}
	colW := 4
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols*colW))
	}
	for si, s := range r.Series {
		mark := marks[si%len(marks)]
		for _, p := range s.Points {
			ci, ok := colOf[p.LogN]
			if !ok {
				continue
			}
			row := int((p.Mflops / maxV) * float64(height-1))
			if row < 0 {
				row = 0
			}
			r := height - 1 - row
			c := ci*colW + colW/2
			if grid[r][c] == ' ' {
				grid[r][c] = mark
			} else {
				grid[r][c] = '*'
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (peak %.0f pseudo-Mflop/s; * = overlap)\n", r.Title, maxV)
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("  +" + strings.Repeat("-", cols*colW) + "\n   ")
	for _, p := range axis.Points {
		fmt.Fprintf(&b, "%-*d", colW, p.LogN)
	}
	b.WriteString(" log2(N)\n  legend: ")
	for si, s := range r.Series {
		fmt.Fprintf(&b, "%c=%s  ", marks[si%len(marks)], s.Name)
	}
	b.WriteString("\n")
	return b.String()
}
