package bench

import (
	"strings"
	"testing"
	"time"

	"spiralfft/internal/machine"
	"spiralfft/internal/search"
)

func fastCfg() Config {
	return Config{
		MinLogN: 6,
		MaxLogN: 9,
		P:       2,
		Mu:      4,
		Timer:   search.TimerConfig{MinTime: 20 * time.Microsecond, Repeats: 1},
	}
}

func TestPseudoMflops(t *testing.T) {
	// 1024 points in 10.24 µs → 5·1024·10/10.24 = 5000.
	got := PseudoMflops(1024, 10240*time.Nanosecond)
	if got < 4999 || got > 5001 {
		t.Errorf("PseudoMflops = %v", got)
	}
	if PseudoMflops(64, 0) != 0 {
		t.Error("zero duration should yield 0")
	}
}

func TestRunMeasuredProducesAllSeries(t *testing.T) {
	res := RunMeasured(fastCfg())
	if len(res.Series) != 5 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 4 {
			t.Errorf("%s: %d points, want 4", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Mflops <= 0 {
				t.Errorf("%s 2^%d: %v Mflop/s", s.Name, p.LogN, p.Mflops)
			}
		}
	}
	for _, name := range []string{"Spiral pthreads", "Spiral OpenMP", "Spiral sequential", "FFTW pthreads", "FFTW sequential"} {
		if _, ok := res.Get(name); !ok {
			t.Errorf("missing series %q", name)
		}
	}
	if _, ok := res.Get("nope"); ok {
		t.Error("Get returned a phantom series")
	}
}

func TestCrossoverFinder(t *testing.T) {
	a := SeriesData{Name: "a", Points: []Point{{6, 50}, {7, 90}, {8, 220}, {9, 400}}}
	b := SeriesData{Name: "b", Points: []Point{{6, 100}, {7, 100}, {8, 100}, {9, 100}}}
	if c := Crossover(a, b, 1.02); c != 8 {
		t.Errorf("Crossover = %d, want 8", c)
	}
	if c := Crossover(b, a, 5.0); c != -1 {
		t.Errorf("Crossover impossible case = %d, want -1", c)
	}
}

func TestRunModeledAllPlatforms(t *testing.T) {
	for _, pl := range machine.Platforms() {
		res := RunModeled(pl, 6, 12)
		if len(res.Series) != 5 {
			t.Fatalf("%s: %d series", pl.Key, len(res.Series))
		}
		for _, s := range res.Series {
			if len(s.Points) != 7 {
				t.Errorf("%s/%s: %d points", pl.Key, s.Name, len(s.Points))
			}
		}
	}
}

func TestRenderings(t *testing.T) {
	res := RunModeled(machine.CoreDuo, 6, 10)
	table := res.Table()
	for _, want := range []string{"log2(N)", "Spiral pthreads", "FFTW sequential", "pseudo Mflop/s"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "log2n,Spiral_pthreads") {
		t.Errorf("csv header wrong: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if lines := strings.Count(csv, "\n"); lines != 6 {
		t.Errorf("csv lines = %d, want 6", lines)
	}
	chart := res.Chart(12)
	for _, want := range []string{"legend", "P=Spiral pthreads", "log2(N)"} {
		if !strings.Contains(chart, want) {
			t.Errorf("chart missing %q:\n%s", want, chart)
		}
	}
	empty := Result{Title: "empty"}
	if empty.Chart(10) != "(no data)\n" {
		t.Error("empty chart rendering wrong")
	}
}

// TestMeasuredPoolBeatsSpawnAtSmallSizes is ablation A1 on real hardware:
// at small sizes the pooled backend must not be slower than the spawn
// backend (the pool's whole purpose is cheaper dispatch).
func TestMeasuredPoolBeatsSpawnAtSmallSizes(t *testing.T) {
	cfg := fastCfg()
	cfg.Timer = search.TimerConfig{MinTime: 200 * time.Microsecond, Repeats: 3}
	res := RunMeasured(cfg)
	pool, _ := res.Get("Spiral pthreads")
	spawn, _ := res.Get("Spiral OpenMP")
	// Compare the small in-cache sizes; allow 10% noise.
	wins := 0
	for _, logN := range []int{6, 7, 8, 9} {
		if pool.At(logN) >= 0.9*spawn.At(logN) {
			wins++
		}
	}
	if wins < 3 {
		t.Errorf("pool slower than spawn at most small sizes: pool=%v spawn=%v", pool.Points, spawn.Points)
	}
}

func TestFFTWThreadCrossover(t *testing.T) {
	r := Result{FFTWThreads: []Point{{8, 1}, {10, 1}, {12, 2}, {14, 2}}}
	if c := r.FFTWThreadCrossover(); c != 12 {
		t.Errorf("crossover = %d, want 12", c)
	}
	if c := (Result{}).FFTWThreadCrossover(); c != -1 {
		t.Errorf("empty crossover = %d, want -1", c)
	}
}
