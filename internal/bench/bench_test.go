package bench

import (
	"os"
	"strings"
	"testing"
	"time"

	"spiralfft/internal/machine"
	"spiralfft/internal/search"
	"spiralfft/internal/smp"
)

func fastCfg() Config {
	return Config{
		MinLogN: 6,
		MaxLogN: 9,
		P:       2,
		Mu:      4,
		Timer:   search.TimerConfig{MinTime: 20 * time.Microsecond, Repeats: 1},
	}
}

func TestPseudoMflops(t *testing.T) {
	// 1024 points in 10.24 µs → 5·1024·10/10.24 = 5000.
	got := PseudoMflops(1024, 10240*time.Nanosecond)
	if got < 4999 || got > 5001 {
		t.Errorf("PseudoMflops = %v", got)
	}
	if PseudoMflops(64, 0) != 0 {
		t.Error("zero duration should yield 0")
	}
}

func TestRunMeasuredProducesAllSeries(t *testing.T) {
	res := RunMeasured(fastCfg())
	if len(res.Series) != 5 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 4 {
			t.Errorf("%s: %d points, want 4", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Mflops <= 0 {
				t.Errorf("%s 2^%d: %v Mflop/s", s.Name, p.LogN, p.Mflops)
			}
		}
	}
	for _, name := range []string{"Spiral pthreads", "Spiral OpenMP", "Spiral sequential", "FFTW pthreads", "FFTW sequential"} {
		if _, ok := res.Get(name); !ok {
			t.Errorf("missing series %q", name)
		}
	}
	if _, ok := res.Get("nope"); ok {
		t.Error("Get returned a phantom series")
	}
}

func TestCrossoverFinder(t *testing.T) {
	a := SeriesData{Name: "a", Points: []Point{{6, 50}, {7, 90}, {8, 220}, {9, 400}}}
	b := SeriesData{Name: "b", Points: []Point{{6, 100}, {7, 100}, {8, 100}, {9, 100}}}
	if c := Crossover(a, b, 1.02); c != 8 {
		t.Errorf("Crossover = %d, want 8", c)
	}
	if c := Crossover(b, a, 5.0); c != -1 {
		t.Errorf("Crossover impossible case = %d, want -1", c)
	}
}

func TestRunModeledAllPlatforms(t *testing.T) {
	for _, pl := range machine.Platforms() {
		res := RunModeled(pl, 6, 12)
		if len(res.Series) != 5 {
			t.Fatalf("%s: %d series", pl.Key, len(res.Series))
		}
		for _, s := range res.Series {
			if len(s.Points) != 7 {
				t.Errorf("%s/%s: %d points", pl.Key, s.Name, len(s.Points))
			}
		}
	}
}

func TestRenderings(t *testing.T) {
	res := RunModeled(machine.CoreDuo, 6, 10)
	table := res.Table()
	for _, want := range []string{"log2(N)", "Spiral pthreads", "FFTW sequential", "pseudo Mflop/s"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "log2n,Spiral_pthreads") {
		t.Errorf("csv header wrong: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if lines := strings.Count(csv, "\n"); lines != 6 {
		t.Errorf("csv lines = %d, want 6", lines)
	}
	chart := res.Chart(12)
	for _, want := range []string{"legend", "P=Spiral pthreads", "log2(N)"} {
		if !strings.Contains(chart, want) {
			t.Errorf("chart missing %q:\n%s", want, chart)
		}
	}
	empty := Result{Title: "empty"}
	if empty.Chart(10) != "(no data)\n" {
		t.Error("empty chart rendering wrong")
	}
}

// TestPoolDispatchCheaperThanSpawn is ablation A1 reduced to its hermetic
// core: the pooled backend's whole purpose is cheaper region dispatch, so a
// no-op parallel region must cost less through the pool than through
// goroutine spawning. Measuring bare dispatch (no FFT work, min-of-trials)
// makes the comparison deterministic on loaded or single-CPU machines where
// the old end-to-end pseudo-Mflop/s comparison (now env-gated below) flaked.
func TestPoolDispatchCheaperThanSpawn(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped in -short")
	}
	for _, p := range []int{2, 4} {
		pool := smp.NewPool(p)
		spawn := smp.NewSpawn(p)
		poolCost := DispatchCost(pool, 200, 5)
		spawnCost := DispatchCost(spawn, 200, 5)
		st := pool.Stats()
		pool.Close()
		spawn.Close()
		t.Logf("p=%d: pool %v/region, spawn %v/region (pool stats: %+v)", p, poolCost, spawnCost, st)
		// The pool must not lose by more than 20%; on every machine tried it
		// wins outright (~2×), so this margin only absorbs timer noise.
		if float64(poolCost) > 1.2*float64(spawnCost) {
			t.Errorf("p=%d: pool dispatch %v slower than spawn %v", p, poolCost, spawnCost)
		}
		if st.Regions < 1001 { // warmup + 5 trials × 200
			t.Errorf("p=%d: pool stats recorded %d regions, want ≥ 1001", p, st.Regions)
		}
	}
}

// TestMeasuredPoolBeatsSpawnAtSmallSizes is the original end-to-end form of
// ablation A1: full FFT runs through both backends compared in
// pseudo-Mflop/s. End-to-end timing is inherently noisy (single-CPU
// machines, CI load), so it only runs when explicitly requested:
//
//	SPIRALFFT_E2E_POOL_TEST=1 go test ./internal/bench -run PoolBeatsSpawn
func TestMeasuredPoolBeatsSpawnAtSmallSizes(t *testing.T) {
	if os.Getenv("SPIRALFFT_E2E_POOL_TEST") == "" {
		t.Skip("end-to-end timing comparison; set SPIRALFFT_E2E_POOL_TEST=1 to run " +
			"(the hermetic version is TestPoolDispatchCheaperThanSpawn)")
	}
	cfg := fastCfg()
	cfg.Timer = search.TimerConfig{MinTime: 200 * time.Microsecond, Repeats: 3}
	res := RunMeasured(cfg)
	pool, _ := res.Get("Spiral pthreads")
	spawn, _ := res.Get("Spiral OpenMP")
	// Compare the small in-cache sizes; allow 10% noise.
	wins := 0
	for _, logN := range []int{6, 7, 8, 9} {
		if pool.At(logN) >= 0.9*spawn.At(logN) {
			wins++
		}
	}
	if wins < 3 {
		t.Errorf("pool slower than spawn at most small sizes: pool=%v spawn=%v", pool.Points, spawn.Points)
	}
}

// TestChartRaggedSeries is the regression test for the grid sizing bug:
// Chart derived its column count from Series[0], so any later series with
// more points wrote past the grid row (index out of range). Ragged results
// are real — a family that fails to build at one size contributes fewer
// points — and must render, with every series' points in the column of
// their LogN on the longest series' axis.
func TestChartRaggedSeries(t *testing.T) {
	res := Result{
		Title: "ragged",
		Series: []SeriesData{
			{Name: "short", Points: []Point{{6, 100}, {7, 200}}},
			{Name: "long", Points: []Point{{6, 150}, {7, 250}, {8, 350}, {9, 450}}},
		},
	}
	chart := res.Chart(8) // panicked before the fix
	for _, want := range []string{"legend", "9 ", "log2(N)"} {
		if !strings.Contains(chart, want) {
			t.Errorf("chart missing %q:\n%s", want, chart)
		}
	}
	// Table and CSV had the dual bug — rows driven by the first series
	// silently dropped the longer series' extra sizes.
	table := res.Table()
	if !strings.Contains(table, "9") || !strings.Contains(table, "450") {
		t.Errorf("table dropped the long series' rows:\n%s", table)
	}
	if lines := strings.Count(res.CSV(), "\n"); lines != 5 {
		t.Errorf("csv lines = %d, want 5 (header + 4 sizes)", lines)
	}
	// A series whose sizes are absent from the axis is skipped, not
	// misplotted at the wrong column.
	res.Series = append(res.Series, SeriesData{Name: "offaxis", Points: []Point{{20, 999}}})
	if chart := res.Chart(8); !strings.Contains(chart, "legend") {
		t.Errorf("off-axis chart failed to render:\n%s", chart)
	}
}

func TestFFTWThreadCrossover(t *testing.T) {
	r := Result{FFTWThreads: []Point{{8, 1}, {10, 1}, {12, 2}, {14, 2}}}
	if c := r.FFTWThreadCrossover(); c != 12 {
		t.Errorf("crossover = %d, want 12", c)
	}
	if c := (Result{}).FFTWThreadCrossover(); c != -1 {
		t.Errorf("empty crossover = %d, want -1", c)
	}
}
