// Command dft computes a DFT from the command line using the public API:
// it reads one complex sample per input line ("re im" or "re"), transforms
// (forward or inverse), and writes one "re im" pair per output line.
// Without -in it synthesizes a test signal (sum of two tones plus noise)
// and prints the dominant frequency bins, demonstrating a typical spectral
// analysis call.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"spiralfft"
	"spiralfft/internal/cliopts"
)

func main() {
	var (
		n       = flag.Int("n", 1024, "transform size for the synthetic demo")
		plan    = cliopts.RegisterPlan(flag.CommandLine)
		inverse = flag.Bool("inverse", false, "apply the inverse transform")
		in      = flag.String("in", "", "input file, one sample per line ('re' or 're im'); '-' for stdin")
		topK    = flag.Int("top", 5, "demo mode: number of dominant bins to print")
	)
	flag.Parse()
	opts, err := plan.Options()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var x []complex128
	if *in != "" {
		x, err = readSamples(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		x = synthesize(*n)
	}

	p, err := spiralfft.NewPlan(len(x), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer p.Close()

	y := make([]complex128, len(x))
	if *inverse {
		err = p.Inverse(y, x)
	} else {
		err = p.Forward(y, x)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *in != "" {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for _, v := range y {
			fmt.Fprintf(w, "%.17g %.17g\n", real(v), imag(v))
		}
		return
	}

	fmt.Printf("plan: n=%d workers=%d parallel=%v tree=%s\n", p.N(), p.Workers(), p.IsParallel(), p.Tree())
	type binMag struct {
		bin int
		mag float64
	}
	bins := make([]binMag, len(y))
	for i, v := range y {
		bins[i] = binMag{i, math.Hypot(real(v), imag(v))}
	}
	sort.Slice(bins, func(i, j int) bool { return bins[i].mag > bins[j].mag })
	fmt.Printf("top %d bins:\n", *topK)
	for i := 0; i < *topK && i < len(bins); i++ {
		fmt.Printf("  bin %5d  |X| = %.2f\n", bins[i].bin, bins[i].mag)
	}
}

// synthesize builds a two-tone signal with deterministic pseudo-noise.
func synthesize(n int) []complex128 {
	x := make([]complex128, n)
	f1, f2 := n/8, n/3
	state := uint64(0x9e3779b97f4a7c15)
	for j := range x {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		noise := (float64(int64(state>>11))/float64(1<<52) - 1) * 0.1
		s := math.Sin(2*math.Pi*float64(f1*j)/float64(n)) +
			0.5*math.Cos(2*math.Pi*float64(f2*j)/float64(n)) + noise
		x[j] = complex(s, 0)
	}
	return x
}

func readSamples(path string) ([]complex128, error) {
	f := os.Stdin
	if path != "-" {
		var err error
		f, err = os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
	}
	var out []complex128
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		var re, im float64
		if k, _ := fmt.Sscan(line, &re, &im); k == 0 {
			continue
		}
		out = append(out, complex(re, im))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("dft: no samples in %s", path)
	}
	return out, nil
}
