// Command codeletgen emits the generated split-radix codelet tier
// (internal/codelet/zsplitradix.go) from the generator in internal/codegen.
//
// Modes:
//
//	codeletgen -o zsplitradix.go          write the registry file (go:generate)
//	codeletgen -verify                    exit 1 if the committed file drifted
//	codeletgen -standalone -n 32 -flavor plain -o main.go
//	                                      emit a self-testing package main for
//	                                      one straight-line kernel (CI smoke)
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"spiralfft/internal/codegen"
)

func main() {
	var (
		out        = flag.String("o", "internal/codelet/zsplitradix.go", "output path (- for stdout)")
		verify     = flag.Bool("verify", false, "compare the generator's output against -o instead of writing")
		standalone = flag.Bool("standalone", false, "emit a self-testing package main for one kernel")
		n          = flag.Int("n", 32, "kernel size for -standalone")
		flavor     = flag.String("flavor", "plain", "kernel flavor for -standalone: plain or tw")
	)
	flag.Parse()
	if err := run(*out, *verify, *standalone, *n, *flavor); err != nil {
		fmt.Fprintln(os.Stderr, "codeletgen:", err)
		os.Exit(1)
	}
}

func run(out string, verify, standalone bool, n int, flavor string) error {
	var data []byte
	var err error
	if standalone {
		switch flavor {
		case "plain":
			data, err = codegen.SplitRadixStandalone(n, false)
		case "tw":
			data, err = codegen.SplitRadixStandalone(n, true)
		default:
			err = fmt.Errorf("unknown flavor %q (want plain or tw)", flavor)
		}
	} else {
		data, err = codegen.SplitRadixFile()
	}
	if err != nil {
		return err
	}
	if verify {
		have, err := os.ReadFile(out)
		if err != nil {
			return err
		}
		if !bytes.Equal(have, data) {
			return fmt.Errorf("%s is stale: regenerate with go generate ./internal/codelet", out)
		}
		fmt.Printf("%s is up to date (%d bytes)\n", out, len(data))
		return nil
	}
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}
