// Command tune runs Spiral's search/learning block for one transform size:
// it tunes the factorization tree with the chosen strategy, reports the
// winning tree, its measured runtime and pseudo-Mflop/s, and (for parallel
// targets) whether and how the multicore Cooley-Tukey split is used.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"spiralfft/internal/bench"
	"spiralfft/internal/cliopts"
	"spiralfft/internal/metrics"
	"spiralfft/internal/search"
	"spiralfft/internal/smp"
)

func main() {
	var (
		n        = flag.Int("n", 1024, "transform size")
		strategy = flag.String("strategy", "dp", "dp | estimate | exhaustive | random | evolve")
		plan     = cliopts.RegisterPlan(flag.CommandLine)
		timing   = cliopts.RegisterTiming(flag.CommandLine, time.Millisecond)
		trace    = flag.Bool("trace", false, "stream every candidate/winner search event to stderr")
		rank     = flag.Bool("rank", false, "print the analytic cost ranking next to measured times for a size grid")
		sizes    = flag.String("sizes", "256,1024,4096", "comma-separated size grid for -rank")
	)
	flag.Parse()
	p, mu := &plan.Workers, &plan.Mu

	if *rank {
		grid, err := parseSizes(*sizes)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		runRank(grid, timing.Config())
		return
	}

	if *strategy == "evolve" {
		runEvolve(*n, timing.MinTime)
		return
	}
	strat, err := cliopts.ParseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tuner := search.NewTuner(strat)
	tuner.Timer = timing.Config()
	if *trace {
		tuner.Trace = metrics.TraceWriter(os.Stderr)
	}

	start := time.Now()
	seq := tuner.BestTree(*n)
	fmt.Printf("size           : %d\n", *n)
	fmt.Printf("strategy       : %s\n", strat)
	fmt.Printf("sequential tree: %s\n", seq.Tree.String())
	fmt.Printf("candidates     : %d\n", seq.Candidates)
	fmt.Printf("seq runtime    : %v  (%.0f pseudo-Mflop/s)\n", seq.Time, bench.PseudoMflops(*n, seq.Time))

	cut := tuner.BestCutoff(*n)
	fmt.Printf("base-case cut  : ≤%d (%s, %v over %d caps)\n",
		cut.Cutoff, cut.Tree.String(), cut.Time, cut.Candidates)

	if *p > 1 {
		pool := smp.NewPool(*p)
		defer pool.Close()
		choice, err := tuner.TuneParallel(*n, *p, *mu, pool)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if choice.UsedParallel() {
			m, k := choice.Parallel.Split()
			fmt.Printf("parallel       : YES, p=%d split %d·%d\n", *p, m, k)
			fmt.Printf("par runtime    : %v  (%.0f pseudo-Mflop/s, speedup %.2fx)\n",
				choice.ParTime, bench.PseudoMflops(*n, choice.ParTime),
				float64(choice.SeqTime)/float64(choice.ParTime))
		} else {
			fmt.Printf("parallel       : no (sequential plan faster or no pµ-admissible split at this size)\n")
			if choice.ParTime > 0 {
				fmt.Printf("best parallel  : %v (not used)\n", choice.ParTime)
			}
		}
		ps := pool.Stats()
		fmt.Printf("pool dispatch  : %d regions (wakeups: %d spin / %d yield / %d park%s)\n",
			ps.Regions, ps.SpinWakeups, ps.YieldWakeups, ps.ParkWakeups,
			map[bool]string{true: ", oversubscribed", false: ""}[ps.Oversubscribed])
	}
	st := tuner.Stats()
	fmt.Printf("search work    : %d searches, %d candidates considered, %d measured\n",
		st.Searches, st.Considered, st.Measured)
	fmt.Printf("tuning took    : %v\n", time.Since(start))
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("tune: bad size %q in -sizes", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// runRank prints, for each size on the grid, the analytic cost model's full
// candidate ranking side by side with measured runtimes: the shortlist the
// two-stage search would measure is marked, and a divergence note calls out
// any size where the measured-best tree was ranked outside it.
func runRank(grid []int, tc search.TimerConfig) {
	for _, n := range grid {
		tuner := search.NewTuner(search.StrategyDP)
		tuner.Timer = tc
		ranked := tuner.Ranked(n)
		if len(ranked) == 0 {
			fmt.Printf("n=%d: no candidates\n", n)
			continue
		}
		k := tuner.TopK
		if k <= 0 || k > len(ranked) {
			k = len(ranked)
		}
		type row struct {
			model    time.Duration
			measured time.Duration
			tree     string
		}
		rows := make([]row, len(ranked))
		best := 0
		for i, s := range ranked {
			d := tuner.MeasureTree(s.Tree)
			rows[i] = row{model: s.Duration(), measured: d, tree: s.Tree.String()}
			if d < rows[best].measured {
				best = i
			}
		}
		fmt.Printf("n=%d: %d candidates, shortlist = model top-%d (►)\n", n, len(ranked), k)
		for i, r := range rows {
			mark := " "
			if i < k {
				mark = "►"
			}
			note := ""
			if i == best {
				note = "  ← measured best"
			}
			fmt.Printf("%s %3d  model %10v  measured %10v  %s%s\n",
				mark, i+1, r.model.Round(time.Nanosecond), r.measured, r.tree, note)
		}
		if best >= k {
			fmt.Printf("  divergence: measured best ranked #%d, outside the top-%d shortlist\n", best+1, k)
		}
	}
}

// runEvolve runs the STEER-style evolutionary search (paper ref. [24]).
func runEvolve(n int, minTime time.Duration) {
	start := time.Now()
	res := search.Evolve(n, search.EvolveConfig{
		Timer: search.TimerConfig{MinTime: minTime, Repeats: 3},
	})
	fmt.Printf("size           : %d\n", n)
	fmt.Printf("strategy       : evolutionary (STEER-style)\n")
	fmt.Printf("best tree      : %s\n", res.Tree.String())
	fmt.Printf("evaluations    : %d over %d generations\n", res.Evaluations, res.Generations)
	fmt.Printf("runtime        : %v  (%.0f pseudo-Mflop/s)\n", res.Time, bench.PseudoMflops(n, res.Time))
	fmt.Printf("tuning took    : %v\n", time.Since(start))
}
