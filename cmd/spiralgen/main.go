// Command spiralgen is the program generator front end, the analogue of
// running Spiral for one DFT: it derives the algorithm, optionally prints
// the SPL formula and the full rewriting derivation (Figure 2 / formula
// (14) of the paper), and emits a standalone Go source file implementing
// the transform.
//
//	spiralgen -n 256 -p 2 -formula        # show formula (14) and derivation
//	spiralgen -n 256 -p 2 -main -o gen.go # emit a self-testing program
//	spiralgen -family real -n 256 -main   # emit any of the seven plan families
//
// With -family, the requested plan family is lowered to the stage-plan IR
// (internal/ir) exactly as the library lowers it at plan time, and the IR
// backend of the generator walks that program — the same pipeline the
// executor and the cache simulator consume.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"spiralfft/internal/codegen"
	"spiralfft/internal/exec"
	"spiralfft/internal/rewrite"
	"spiralfft/internal/search"
	"spiralfft/internal/spl"
)

func main() {
	var (
		transform = flag.String("transform", "dft", "dft | wht | 2d")
		family    = flag.String("family", "", "emit code for a plan family via the IR backend: dft | real | batch | 2d | wht | dct | stft")
		cols      = flag.Int("cols", 0, "2d only: column count (rows come from -n)")
		count     = flag.Int("count", 4, "batch family: signal count")
		hop       = flag.Int("hop", 0, "stft family: hop size (default frame/2)")
		n         = flag.Int("n", 256, "transform size")
		p         = flag.Int("p", runtime.NumCPU(), "workers (1 = sequential)")
		mu        = flag.Int("mu", 4, "cache-line length µ in complex128 elements")
		formula   = flag.Bool("formula", false, "print the derived SPL formula and derivation instead of code")
		out       = flag.String("o", "", "output file (default stdout)")
		pkg       = flag.String("pkg", "main", "package name for generated code")
		fn        = flag.String("func", "", "function name (default DFT<n>)")
		emitMain  = flag.Bool("main", false, "emit a self-testing main()")
		tune      = flag.Bool("tune", false, "tune the factorization by measurement before generating")
		latex     = flag.Bool("latex", false, "with -formula: additionally print the formula in LaTeX")
	)
	flag.Parse()

	latexOut = *latex
	if *formula {
		switch *transform {
		case "wht":
			printWHTFormula(*n, *p, *mu)
		case "2d":
			print2DFormula(*n, *cols, *p, *mu)
		default:
			printFormula(*n, *p, *mu)
		}
		return
	}
	if *family != "" {
		src, err := codegen.GenerateFamily(codegen.FamilySpec{
			Family:  *family,
			N:       *n,
			Cols:    *cols,
			Count:   *count,
			Hop:     *hop,
			Workers: *p,
			Mu:      *mu,
		}, codegen.Config{PackageName: *pkg, FuncName: *fn, EmitMain: *emitMain})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		writeOut(*out, src, fmt.Sprintf("family %s, n=%d, p=%d", *family, *n, *p))
		return
	}
	if *transform != "dft" {
		fmt.Fprintln(os.Stderr, "code emission currently supports -transform dft only (or use -family); use -formula for wht/2d")
		os.Exit(2)
	}

	tree := chooseTree(*n, *p, *mu, *tune)
	src, err := codegen.Generate(tree, codegen.Config{
		PackageName: *pkg,
		FuncName:    *fn,
		Workers:     *p,
		Mu:          *mu,
		EmitMain:    *emitMain,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	writeOut(*out, src, "factorization "+tree.String())
}

// writeOut prints the generated source to stdout or writes it to a file.
func writeOut(path, src, desc string) {
	if path == "" {
		fmt.Print(src)
		return
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d bytes, %s)\n", path, len(src), desc)
}

// chooseTree picks the factorization: for parallel targets the top split
// must satisfy pµ | m and pµ | k.
func chooseTree(n, p, mu int, tune bool) *exec.Tree {
	strat := search.StrategyEstimate
	if tune {
		strat = search.StrategyDP
	}
	tuner := search.NewTuner(strat)
	if p > 1 {
		if m, ok := exec.SplitFor(n, p, mu); ok {
			return exec.SplitTree(tuner.BestTree(m).Tree, tuner.BestTree(n/m).Tree)
		}
		fmt.Fprintf(os.Stderr, "no pµ-admissible split for n=%d, p=%d, µ=%d; generating sequential code\n", n, p, mu)
	}
	return tuner.BestTree(n).Tree
}

var latexOut bool

func printFormula(n, p, mu int) {
	if p <= 1 {
		g, ok := rewrite.CooleyTukey(largestSplit(n)).Apply(spl.NewDFT(n))
		if !ok {
			fmt.Printf("DFT_%d (no Cooley-Tukey split)\n", n)
			return
		}
		fmt.Printf("Sequential Cooley-Tukey FFT (rule (1)):\n  %s\n", g.String())
		return
	}
	m, ok := exec.SplitFor(n, p, mu)
	if !ok {
		fmt.Fprintf(os.Stderr, "no pµ-admissible split for n=%d, p=%d, µ=%d ((pµ)² must divide N)\n", n, p, mu)
		os.Exit(1)
	}
	f, trace, err := rewrite.DeriveMulticoreCT(n, m, p, mu)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("Multicore Cooley-Tukey FFT for DFT_%d, p=%d, µ=%d (formula (14)):\n\n", n, p, mu)
	fmt.Printf("  %s\n\nDerivation:\n%s", f.String(), trace.String())
	if latexOut {
		fmt.Printf("\nLaTeX:\n  %s\n", spl.Latex(f))
	}
}

// printWHTFormula derives and prints the fully optimized WHT formula.
func printWHTFormula(n, p, mu int) {
	k := 0
	for v := n; v > 1; v >>= 1 {
		k++
	}
	if 1<<uint(k) != n || k < 2 {
		fmt.Fprintf(os.Stderr, "WHT needs a power-of-two size ≥ 4, got %d\n", n)
		os.Exit(1)
	}
	f, trace, err := rewrite.DeriveMulticoreWHT(k, k/2, p, mu)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("Multicore Walsh-Hadamard transform WHT_%d, p=%d, µ=%d:\n\n  %s\n\nDerivation:\n%s", n, p, mu, f.String(), trace.String())
}

// print2DFormula derives and prints the fully optimized 2D DFT formula.
func print2DFormula(rows, cols, p, mu int) {
	if cols == 0 {
		cols = rows
	}
	f, trace, err := rewrite.Derive2D(rows, cols, p, mu)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("Multicore 2D DFT (row-column) for a %d×%d array, p=%d, µ=%d:\n\n  %s\n\nDerivation:\n%s", rows, cols, p, mu, f.String(), trace.String())
}

func largestSplit(n int) int {
	for m := n / 2; m >= 2; m-- {
		if n%m == 0 {
			return m
		}
	}
	return 2
}
