// Command fftd is the transform-serving daemon: it exposes the library's
// plan families over HTTP so non-Go clients (and Go clients via the client
// package) can run tuned transforms against a long-lived, warmed plan
// table. See SPEC.md for the wire protocol and README.md for usage.
//
// The daemon serves HTTP/1.1 on plaintext and HTTP/2 when -tls-cert and
// -tls-key are given (Go's net/http enables h2 automatically over TLS;
// plaintext h2c would need a dependency this module deliberately avoids).
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spiralfft"
	"spiralfft/internal/cliopts"
	"spiralfft/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7723", "listen address")
		plan        = cliopts.RegisterPlan(flag.CommandLine)
		maxInFlight = flag.Int("max-inflight", 0, "admission cap on concurrent requests (0 = 2×GOMAXPROCS)")
		maxN        = flag.Int("max-n", 0, "largest accepted total element count (0 = library default)")
		maxDeadline = flag.Duration("max-deadline", 30*time.Second, "cap on per-request deadlines")
		tlsCert     = flag.String("tls-cert", "", "TLS certificate (enables HTTPS and HTTP/2)")
		tlsKey      = flag.String("tls-key", "", "TLS key")
		timed       = flag.Bool("timed-metrics", false, "enable the library's timed instrumentation (small per-transform cost)")
		wisdomFile  = flag.String("wisdom-file", "", "wisdom file for the shared tenant namespace: loaded at startup, saved on clean shutdown")
	)
	flag.Parse()

	planner, err := cliopts.ParsePlanner(plan.Planner)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *timed {
		spiralfft.EnableMetrics()
	}
	spiralfft.ExposeExpvar()

	srv := server.New(server.Config{
		Workers:     plan.Workers,
		Mu:          plan.Mu,
		Planner:     planner,
		PlanBudget:  plan.Budget,
		MaxInFlight: *maxInFlight,
		MaxN:        *maxN,
		MaxDeadline: *maxDeadline,
	})
	defer srv.Close()

	if *wisdomFile != "" {
		// A missing file is a cold start, not an error; anything else
		// (unreadable file, malformed wisdom) is fatal so a typo'd path
		// does not silently discard accumulated tuning on shutdown.
		data, err := os.ReadFile(*wisdomFile)
		switch {
		case errors.Is(err, os.ErrNotExist):
		case err != nil:
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		default:
			if err := srv.Wisdom("").Import(string(data)); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "fftd: loaded %d wisdom entries from %s\n",
				srv.Wisdom("").Len(), *wisdomFile)
		}
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("/debug/vars", expvar.Handler())

	hs := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		cfg := srv.Config()
		fmt.Fprintf(os.Stderr, "fftd: listening on %s (workers=%d, max-inflight=%d)\n",
			*addr, cfg.Workers, cfg.MaxInFlight)
		if *tlsCert != "" || *tlsKey != "" {
			errc <- hs.ListenAndServeTLS(*tlsCert, *tlsKey)
			return
		}
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "fftd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, err)
	}
	if *wisdomFile != "" {
		if err := os.WriteFile(*wisdomFile, []byte(srv.Wisdom("").Export()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
		} else {
			fmt.Fprintf(os.Stderr, "fftd: saved %d wisdom entries to %s\n",
				srv.Wisdom("").Len(), *wisdomFile)
		}
	}
}
