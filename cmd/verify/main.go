// Command verify is the library's built-in self-test: it validates every
// execution path against the O(n²) definition across a matrix of sizes,
// worker counts, backends and transform kinds, and checks the Definition-1
// guarantees on the parallel plans' memory traces. Run it after porting or
// modifying the library; it prints one line per check and exits non-zero on
// any failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"spiralfft"
	"spiralfft/internal/cachesim"
	"spiralfft/internal/codelet"
	"spiralfft/internal/complexvec"
	"spiralfft/internal/exec"
	"spiralfft/internal/rewrite"
	"spiralfft/internal/spl"
)

const tol = 1e-9

var failures int

func check(name string, ok bool, detail string) {
	status := "ok"
	if !ok {
		status = "FAIL"
		failures++
	}
	fmt.Printf("%-58s %s", name, status)
	if !ok && detail != "" {
		fmt.Printf("  (%s)", detail)
	}
	fmt.Println()
}

func refDFT(x []complex128) []complex128 {
	y := make([]complex128, len(x))
	codelet.Naive(len(x)).Apply(y, 0, 1, x, 0, 1, nil)
	return y
}

func main() {
	maxWorkers := flag.Int("p", runtime.NumCPU(), "maximum worker count to verify")
	flag.Parse()

	sizes := []int{2, 3, 8, 16, 60, 64, 100, 256, 1000, 1009, 1024, 4096}
	workerSet := []int{1}
	for p := 2; p <= *maxWorkers; p *= 2 {
		workerSet = append(workerSet, p)
	}

	// Complex plans: every size × worker count × backend.
	for _, n := range sizes {
		want := refDFT(complexvec.Random(n, uint64(n)))
		for _, p := range workerSet {
			for _, bk := range []spiralfft.Backend{spiralfft.BackendPool, spiralfft.BackendSpawn} {
				plan, err := spiralfft.NewPlan(n, &spiralfft.Options{Workers: p, Backend: bk})
				if err != nil {
					check(fmt.Sprintf("plan n=%d p=%d %s", n, p, bk), false, err.Error())
					continue
				}
				x := complexvec.Random(n, uint64(n))
				got := make([]complex128, n)
				err = plan.Forward(got, x)
				e := complexvec.RelError(got, want)
				check(fmt.Sprintf("forward n=%d p=%d %s", n, p, bk), err == nil && e <= tol,
					fmt.Sprintf("err=%v rel=%.2g", err, e))
				back := make([]complex128, n)
				plan.Inverse(back, got)
				e = complexvec.RelError(back, x)
				check(fmt.Sprintf("roundtrip n=%d p=%d %s", n, p, bk), e <= tol, fmt.Sprintf("rel=%.2g", e))
				plan.Close()
			}
		}
	}

	// Real and WHT plans.
	for _, n := range []int{64, 256, 1024} {
		rp, err := spiralfft.NewRealPlan(n, &spiralfft.Options{Workers: workerSet[len(workerSet)-1]})
		if err != nil {
			check(fmt.Sprintf("real plan n=%d", n), false, err.Error())
		} else {
			xr := make([]float64, n)
			for i := range xr {
				xr[i] = float64((i*7)%13) - 6
			}
			spec := make([]complex128, n/2+1)
			back := make([]float64, n)
			rp.Forward(spec, xr)
			rp.Inverse(back, spec)
			worst := 0.0
			for i := range xr {
				if d := back[i] - xr[i]; d > worst || -d > worst {
					worst = d
					if worst < 0 {
						worst = -worst
					}
				}
			}
			check(fmt.Sprintf("real roundtrip n=%d", n), worst <= 1e-9, fmt.Sprintf("max=%.2g", worst))
			rp.Close()
		}
		wp, err := spiralfft.NewWHTPlan(n, &spiralfft.Options{Workers: workerSet[len(workerSet)-1]})
		if err != nil {
			check(fmt.Sprintf("wht plan n=%d", n), false, err.Error())
		} else {
			x := complexvec.Random(n, 5)
			y := make([]complex128, n)
			z := make([]complex128, n)
			wp.Transform(y, x)
			wp.Transform(z, y)
			complexvec.Scale(z, complex(1/float64(n), 0))
			e := complexvec.RelError(z, x)
			check(fmt.Sprintf("wht involution n=%d", n), e <= tol, fmt.Sprintf("rel=%.2g", e))
			wp.Close()
		}
	}

	// Definition-1 guarantees on traces: the derived schedule must be
	// false-sharing free and perfectly balanced for every config.
	for _, c := range []struct{ n, p, mu int }{{256, 2, 4}, {1024, 2, 4}, {4096, 4, 4}} {
		m, ok := exec.SplitFor(c.n, c.p, c.mu)
		if !ok {
			continue
		}
		pl, err := exec.NewParallel(c.n, m, exec.ParallelConfig{P: c.p, Mu: c.mu, TraceOnly: true})
		if err != nil {
			check(fmt.Sprintf("trace n=%d p=%d", c.n, c.p), false, err.Error())
			continue
		}
		rep := cachesim.AnalyzeParallel(pl, c.mu)
		check(fmt.Sprintf("no false sharing n=%d p=%d µ=%d", c.n, c.p, c.mu),
			rep.FalseSharingFree(), fmt.Sprintf("%d lines", rep.TotalFalseSharedLines()))
		check(fmt.Sprintf("perfect balance n=%d p=%d", c.n, c.p),
			rep.MaxImbalance() == 1.0, fmt.Sprintf("imbalance=%.3f", rep.MaxImbalance()))
	}

	// Formula (14) derivation identity.
	f, _, err := rewrite.DeriveMulticoreCT(256, 16, 2, 4)
	ok := err == nil && spl.IsFullyOptimized(f, 2, 4)
	if ok {
		x := complexvec.Random(256, 1)
		y := make([]complex128, 256)
		f.Apply(y, x)
		ok = complexvec.RelError(y, refDFT(x)) <= tol
	}
	check("formula (14) derivation (DFT_256, p=2, µ=4)", ok, fmt.Sprintf("%v", err))

	fmt.Println()
	if failures > 0 {
		fmt.Printf("%d check(s) FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("all checks passed")
}
