// Command calibrate measures the primitive costs that parameterize the
// platform model (internal/machine) on the current host, and prints them
// next to the constants used for the paper's four machines:
//
//   - sustained scalar flop rate on FFT code (FlopsPerCycle),
//   - spin-barrier fork-join cost (BarrierCycles, the pooled backend),
//   - thread-spawn fork-join cost (SpawnCycles, the non-pooled backend),
//   - cache-line ping-pong cost (LineTransferCycles, via two workers
//     alternately writing the same line).
//
// This is how the model's order-of-magnitude constants were sanity-checked;
// rerun it on any machine to see where it falls between the paper's
// platforms.
package main

import (
	"flag"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"spiralfft/internal/complexvec"
	"spiralfft/internal/exec"
	"spiralfft/internal/machine"
	"spiralfft/internal/search"
	"spiralfft/internal/smp"
)

func main() {
	freqGHz := flag.Float64("ghz", 0, "CPU frequency in GHz (0 = report in ns instead of cycles)")
	flag.Parse()

	cyc := func(d time.Duration) string {
		if *freqGHz > 0 {
			return fmt.Sprintf("%.0f cycles", d.Seconds()*(*freqGHz)*1e9)
		}
		return d.String()
	}

	timer := search.TimerConfig{MinTime: 5 * time.Millisecond, Repeats: 5}

	// Flop rate: time a mid-size in-cache transform.
	n := 4096
	seq := exec.MustNewSeq(exec.RadixTree(n))
	x := complexvec.Random(n, 1)
	y := make([]complex128, n)
	scratch := seq.NewScratch()
	d := search.Measure(func() { seq.Transform(y, x, scratch) }, timer)
	flops := exec.FlopCount(n)
	fmt.Printf("host: GOMAXPROCS=%d\n\n", runtime.GOMAXPROCS(0))
	fmt.Printf("DFT_%d sequential:        %v  (%.0f pseudo-Mflop/s", n, d, flops/(float64(d.Nanoseconds())/1000))
	if *freqGHz > 0 {
		fmt.Printf(", %.2f flops/cycle", flops/(d.Seconds()*(*freqGHz)*1e9))
	}
	fmt.Println(")")

	// Fork-join costs.
	p := 2
	pool := smp.NewPool(p)
	dPool := search.Measure(func() { pool.Run(func(int) {}) }, timer)
	pool.Close()
	spawn := smp.NewSpawn(p)
	dSpawn := search.Measure(func() { spawn.Run(func(int) {}) }, timer)
	fmt.Printf("pool fork-join (p=%d):     %v  [%s]\n", p, dPool, cyc(dPool))
	fmt.Printf("spawn fork-join (p=%d):    %v  [%s]\n", p, dSpawn, cyc(dSpawn))

	// Line ping-pong: two workers alternately increment values in the same
	// cache line vs. in distant lines; the per-op difference approximates
	// one ownership transfer.
	shared := make([]int64, 64) // [0] and [32] are 256 bytes apart
	pong := func(idxA, idxB int, iters int) time.Duration {
		pool := smp.NewPool(2)
		defer pool.Close()
		start := time.Now()
		pool.Run(func(w int) {
			idx := idxA
			if w == 1 {
				idx = idxB
			}
			for i := 0; i < iters; i++ {
				atomic.AddInt64(&shared[idx], 1)
			}
		})
		return time.Since(start)
	}
	const iters = 200000
	same := pong(0, 1, iters) // same cache line
	far := pong(0, 32, iters) // different lines
	perOp := (same - far) / time.Duration(iters)
	if perOp < 0 {
		perOp = 0
	}
	fmt.Printf("line ping-pong per write: %v  [%s]\n", perOp, cyc(perOp))

	fmt.Println("\npaper-platform model constants for comparison (cycles):")
	fmt.Printf("%-28s %-10s %-10s %-10s\n", "platform", "barrier", "spawn", "line")
	for _, pl := range machine.Platforms() {
		fmt.Printf("%-28s %-10.0f %-10.0f %-10.0f\n", pl.Name, pl.BarrierCycles, pl.SpawnCycles, pl.LineTransferCycles)
	}
}
