// Command benchfig3 regenerates Figure 3 of the paper: pseudo-Mflop/s of
// the five DFT series (Spiral pthreads / Spiral OpenMP / Spiral sequential /
// FFTW pthreads / FFTW sequential) over sizes 2^min .. 2^max.
//
// Two modes:
//
//	-platform host                measure on this machine (real wall clock)
//	-platform coreduo|opteron|pentiumd|xeonmp|all
//	                              evaluate the analytic model of the paper's
//	                              machine (hardware substitution; DESIGN.md)
//
// Output: -format table (default), chart (ASCII Figure-3 subplot), or csv.
// -crossover additionally prints the parallelization break-even sizes.
// -quick shrinks the host sweep to a seconds-long smoke run (2^6..2^10, short
// timer), and -stats appends a JSON observability snapshot (pool dispatch
// counters, plan-cache counters, per-family transform aggregates) — the CI
// artifact that tracks dispatch health across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"spiralfft"
	"spiralfft/internal/bench"
	"spiralfft/internal/cliopts"
	"spiralfft/internal/machine"
)

func main() {
	var (
		platform  = flag.String("platform", "all", "host | coreduo | opteron | pentiumd | xeonmp | all")
		minLogN   = flag.Int("min", 6, "smallest size as log2(N)")
		maxLogN   = flag.Int("max", 16, "largest size as log2(N)")
		plan      = cliopts.RegisterPlan(flag.CommandLine)
		timing    = cliopts.RegisterTiming(flag.CommandLine, 2*time.Millisecond)
		tune      = flag.Bool("tune", false, "use measured-DP tree tuning for the Spiral series (host mode)")
		format    = flag.String("format", "table", "table | chart | csv")
		crossover = flag.Bool("crossover", false, "report parallelization break-even sizes")
		quick     = flag.Bool("quick", false, "smoke-run preset: sizes 2^6..2^10, 200µs timer (host mode)")
		stats     = flag.Bool("stats", false, "append a JSON observability snapshot (pools, cache, transforms)")
	)
	flag.Parse()
	p, mu := &plan.Workers, &plan.Mu

	if *quick {
		*minLogN, *maxLogN = 6, 10
		timing.MinTime = 200 * time.Microsecond
	}

	var results []bench.Result
	switch *platform {
	case "host":
		fmt.Fprintf(os.Stderr, "measuring on host (%d workers, µ=%d, 2^%d..2^%d)...\n", *p, *mu, *minLogN, *maxLogN)
		cfg := bench.Config{
			MinLogN: *minLogN, MaxLogN: *maxLogN, P: *p, Mu: *mu, Tune: *tune,
			Timer:   timing.Config(),
			Verbose: func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) },
		}
		results = append(results, bench.RunMeasured(cfg))
	case "all":
		for _, pl := range machine.Platforms() {
			results = append(results, bench.RunModeled(pl, *minLogN, *maxLogN))
		}
	default:
		pl, ok := machine.ByKey(*platform)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown platform %q\n", *platform)
			os.Exit(2)
		}
		results = append(results, bench.RunModeled(pl, *minLogN, *maxLogN))
	}

	for _, res := range results {
		switch *format {
		case "chart":
			fmt.Print(res.Chart(16))
		case "csv":
			fmt.Print(res.CSV())
		default:
			fmt.Print(res.Table())
		}
		if *crossover {
			printCrossovers(res)
		}
		fmt.Println()
	}
	if *stats {
		printStats()
	}
}

// printStats emits the process-wide observability snapshot as JSON: every
// pool the benchmark created (the measured series construct and close one
// per point), the plan cache, and the per-family transform aggregates.
func printStats() {
	snap := struct {
		Pools      spiralfft.AggregatePoolStats
		Cache      spiralfft.CacheStats
		Transforms map[string]spiralfft.TransformStats
	}{
		Pools:      spiralfft.PoolTotals(),
		Cache:      spiralfft.DefaultCache().Stats(),
		Transforms: spiralfft.TransformTotals(),
	}
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	fmt.Printf("observability snapshot:\n%s\n", out)
}

func printCrossovers(res bench.Result) {
	seq, _ := res.Get("Spiral sequential")
	fwSeq, _ := res.Get("FFTW sequential")
	for _, name := range []string{"Spiral pthreads", "Spiral OpenMP"} {
		s, _ := res.Get(name)
		report(name, bench.Crossover(s, seq, 1.02))
	}
	fw, _ := res.Get("FFTW pthreads")
	report("FFTW pthreads", bench.Crossover(fw, fwSeq, 1.02))
}

func report(name string, logN int) {
	if logN < 0 {
		fmt.Printf("  %-16s: no parallel speedup in range\n", name)
		return
	}
	fmt.Printf("  %-16s: parallel speedup from N = 2^%d\n", name, logN)
}
