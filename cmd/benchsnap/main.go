// Command benchsnap records and compares the repo's performance trajectory
// (ROADMAP item 3): every run of the fixed metric grid emits one versioned
// BENCH_<date>.json snapshot, and the diff mode joins two snapshots and
// gates on regressions.
//
// Record (default): run the grid and write the snapshot.
//
//	benchsnap                  full grid → BENCH_<date>.json
//	benchsnap -quick           CI-sized grid (seconds, not minutes)
//	benchsnap -o out.json      explicit output path (- for stdout)
//	benchsnap -trials 7        min-of-7-trials timing
//
// Diff: compare two snapshots, print the delta table, exit 1 when any
// metric regressed beyond the threshold.
//
//	benchsnap -diff old.json new.json
//	benchsnap -diff -threshold 0.5 BENCH_baseline.json BENCH_2026-08-09.json
//
// The grid covers per-size pseudo-Mflop/s for all seven plan families,
// cached-plan parallel throughput, smp dispatch cost (pool vs spawn), and
// the fftd server core's p50/p99 request latency. See EXPERIMENTS.md
// ("Performance trajectory") for the methodology.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"spiralfft/internal/benchfmt"
)

func main() {
	var (
		diff      = flag.Bool("diff", false, "compare two snapshots: benchsnap -diff old.json new.json")
		threshold = flag.Float64("threshold", 0.25, "regression threshold as a fraction (diff mode; 0.25 = 25%)")
		quick     = flag.Bool("quick", false, "record the quick CI grid instead of the full grid")
		trials    = flag.Int("trials", 0, "timing trials per metric, min-of-K (0 = grid default)")
		out       = flag.String("o", "", "output path (default BENCH_<date>.json; - for stdout)")
	)
	flag.Parse()
	if *diff {
		os.Exit(runDiff(flag.Args(), *threshold))
	}
	os.Exit(record(*quick, *trials, *out))
}

func record(quick bool, trials int, out string) int {
	now := time.Now().UTC()
	snap, err := benchfmt.Run(benchfmt.RunConfig{
		Quick:     quick,
		Trials:    trials,
		CreatedAt: now,
		GitSHA:    gitSHA(),
		Verbose:   func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) },
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		return 2
	}
	data, err := benchfmt.Encode(snap)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		return 2
	}
	if out == "-" {
		os.Stdout.Write(data)
		return 0
	}
	if out == "" {
		out = "BENCH_" + now.Format("2006-01-02") + ".json"
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d metrics, grid=%s, host=%s)\n",
		out, len(snap.Metrics), snap.Grid, snap.Host.Fingerprint)
	return 0
}

func runDiff(args []string, threshold float64) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchsnap -diff [-threshold f] old.json new.json")
		return 2
	}
	old, err := readSnapshot(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		return 2
	}
	cur, err := readSnapshot(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		return 2
	}
	r := benchfmt.Diff(old, cur, threshold)
	fmt.Print(r.Table())
	if len(r.Regressions()) > 0 {
		return 1
	}
	return 0
}

func readSnapshot(path string) (*benchfmt.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := benchfmt.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// gitSHA best-effort resolves the working tree's commit; provenance only,
// so failures (no git, not a checkout) yield an empty field, not an error.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
