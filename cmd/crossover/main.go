// Command crossover reproduces the paper's headline claim (experiment E7):
// Spiral's pooled parallel code profits from the second processor at sizes
// as small as 2^8 (in-L1, under 10,000 cycles on the paper's machines),
// whereas the FFTW-style strategy (fresh threads per transform, µ-oblivious
// block-cyclic loops) needs sizes beyond 2^13.
//
// It measures the break-even size on the host and evaluates the model for
// the paper's four machines, printing both next to the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"spiralfft/internal/bench"
	"spiralfft/internal/machine"
	"spiralfft/internal/search"
)

func main() {
	var (
		p       = flag.Int("p", runtime.NumCPU(), "workers for host measurement")
		mu      = flag.Int("mu", 4, "cache-line length µ")
		minLogN = flag.Int("min", 6, "smallest size as log2(N)")
		maxLogN = flag.Int("max", 16, "largest size as log2(N)")
		minTime = flag.Duration("mintime", 2*time.Millisecond, "minimum measuring time per point")
	)
	flag.Parse()

	fmt.Println("Parallelization break-even (first N with ≥2% speedup over the library's own sequential plan)")
	fmt.Println()
	fmt.Printf("%-28s %-18s %-18s\n", "configuration", "Spiral (pooled)", "FFTW-style (spawn)")

	// Modeled paper platforms.
	for _, pl := range machine.Platforms() {
		res := bench.RunModeled(pl, 6, 20)
		fmt.Printf("%-28s %-18s %-18s\n", pl.Name, cross(res, "Spiral pthreads", "Spiral sequential"),
			cross(res, "FFTW pthreads", "FFTW sequential"))
	}

	// Host measurement.
	fmt.Fprintf(os.Stderr, "\nmeasuring host (p=%d)...\n", *p)
	res := bench.RunMeasured(bench.Config{
		MinLogN: *minLogN, MaxLogN: *maxLogN, P: *p, Mu: *mu,
		Timer: search.TimerConfig{MinTime: *minTime, Repeats: 3},
	})
	fftw := "none in range"
	if c := res.FFTWThreadCrossover(); c >= 0 {
		fftw = fmt.Sprintf("2^%d", c)
	}
	fmt.Printf("%-28s %-18s %-18s\n", fmt.Sprintf("host (measured, p=%d)", *p),
		cross(res, "Spiral pthreads", "Spiral sequential"), fftw)
	fmt.Println("(host FFTW column: first size at which the FFTW-style planner measured")
	fmt.Println(" a second thread as profitable and enabled it)")

	fmt.Println()
	fmt.Println("Paper (Section 4): Spiral speeds up from N = 2^8 (Core Duo, in-L1, <10k cycles);")
	fmt.Println("FFTW uses a second thread only beyond N = 2^13 (>500k cycles), and on the")
	fmt.Println("4-processor Opteron reaches 4 threads only at N = 2^20 vs Spiral's N = 2^9.")
}

func cross(res bench.Result, par, seq string) string {
	a, _ := res.Get(par)
	b, _ := res.Get(seq)
	c := bench.Crossover(a, b, 1.02)
	if c < 0 {
		return "none in range"
	}
	return fmt.Sprintf("2^%d", c)
}
