package spiralfft

import "context"

// Transformer is the unified surface of every complex-vector plan type: a
// fixed-size prepared transform with a forward and a (unitary) inverse
// direction. N reports the transform size — for BatchPlan that is the
// per-signal size, so generic code that allocates buffers should use the
// Sized extension (every implementation provides Len, the exact required
// slice length) rather than N.
//
// All implementations in this package are safe for concurrent use, and
// Close releases the plan (one reference, for cache-owned plans).
type Transformer interface {
	// N returns the transform size (per-signal for BatchPlan; use Sized
	// for the required slice length).
	N() int
	// Forward computes dst = T(src). dst == src is allowed.
	Forward(dst, src []complex128) error
	// Inverse computes dst = T⁻¹(src), so Inverse(Forward(x)) == x.
	Inverse(dst, src []complex128) error
	// Close releases the plan's resources (or cache reference).
	Close()
}

// RealTransformer is the Transformer variant for plans whose time-domain
// side is real-valued. The spectrum side S differs by transform family —
// []complex128 half-spectra for the packed real DFT and the STFT,
// []float64 coefficient vectors for the DCT — so it is a type parameter:
//
//	var _ RealTransformer[[]complex128] = (*RealPlan)(nil)
//	var _ RealTransformer[[]float64]    = (*DCTPlan)(nil)
type RealTransformer[S any] interface {
	// N returns the time-domain length.
	N() int
	// Forward transforms the real signal src into the spectrum dst.
	Forward(dst S, src []float64) error
	// Inverse reconstructs the real signal dst from the spectrum src.
	Inverse(dst []float64, src S) error
	// Close releases the plan's resources (or cache reference).
	Close()
}

// ContextTransformer is the context-aware extension every complex-vector
// plan type also satisfies. The Ctx variants observe cancellation before
// the transform starts and again at every region boundary of the lowered
// program, so cancellation latency is bounded by one region of work; on
// cancellation they return ctx.Err() and leave dst unspecified. A nil
// context behaves like the plain method.
//
// All transform methods — plain and Ctx — share the fault-containment
// contract: a panic inside a region body is recovered by the execution
// substrate (the worker pool and the plan stay usable) and re-raised on the
// calling goroutine as a *RegionPanicError.
type ContextTransformer interface {
	Transformer
	// ForwardCtx is Forward with cancellation at region boundaries.
	ForwardCtx(ctx context.Context, dst, src []complex128) error
	// InverseCtx is Inverse with cancellation at region boundaries.
	InverseCtx(ctx context.Context, dst, src []complex128) error
}

// BufferedTransformer is the zero-copy serving surface of the complex-vector
// plan families: a context-aware transformer whose request/response buffers
// are checked out of the plan's own arena instead of allocated per call.
// This is the handle a transform server holds per plan family — the hot path
// is Buffers → fill In → ForwardCtx(Out, In) → ship Out → Release, with zero
// buffer allocations in the steady state.
//
// The real-input families expose the same lease model with their own lease
// shapes (RealPlan/STFTPlan → *RealLease, DCTPlan → *FloatLease); they
// cannot share this interface because their transform signatures differ.
type BufferedTransformer interface {
	ContextTransformer
	Sized
	// Buffers checks an aligned In/Out buffer pair out of the plan's arena.
	Buffers() *Lease
}

// Sized is the slice-length contract every Transformer in this package
// also satisfies: Len returns the exact required length of the dst and
// src slices passed to Forward/Inverse. It equals N for Plan and WHTPlan,
// rows·cols for Plan2D, and N·Count for BatchPlan. Generic code holding a
// Transformer can recover it with a type assertion:
//
//	buf := make([]complex128, tr.(spiralfft.Sized).Len())
type Sized interface {
	// Len returns the required Forward/Inverse slice length.
	Len() int
}

// Compile-time interface assertions for all seven plan types, so the
// surfaces cannot drift.
var (
	_ Transformer = (*Plan)(nil)
	_ Transformer = (*BatchPlan)(nil)
	_ Transformer = (*Plan2D)(nil)
	_ Transformer = (*WHTPlan)(nil)

	_ ContextTransformer = (*Plan)(nil)
	_ ContextTransformer = (*BatchPlan)(nil)
	_ ContextTransformer = (*Plan2D)(nil)
	_ ContextTransformer = (*WHTPlan)(nil)

	_ Sized = (*Plan)(nil)
	_ Sized = (*BatchPlan)(nil)
	_ Sized = (*Plan2D)(nil)
	_ Sized = (*WHTPlan)(nil)

	_ BufferedTransformer = (*Plan)(nil)
	_ BufferedTransformer = (*BatchPlan)(nil)
	_ BufferedTransformer = (*Plan2D)(nil)
	_ BufferedTransformer = (*WHTPlan)(nil)

	_ RealTransformer[[]complex128] = (*RealPlan)(nil)
	_ RealTransformer[[]complex128] = (*STFTPlan)(nil)
	_ RealTransformer[[]float64]    = (*DCTPlan)(nil)
)
