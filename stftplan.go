package spiralfft

import (
	"context"
	"fmt"
	"math"
	"sync"

	"spiralfft/internal/exec"
	"spiralfft/internal/metrics"
)

// Window selects the analysis window of an STFT plan.
type Window int

const (
	// WindowHann is the raised cosine window (default; satisfies the
	// constant-overlap-add condition at 50% overlap).
	WindowHann Window = iota
	// WindowHamming is the Hamming window.
	WindowHamming
	// WindowRect is the rectangular window (no tapering).
	WindowRect
)

// String names the window.
func (w Window) String() string {
	switch w {
	case WindowHamming:
		return "hamming"
	case WindowRect:
		return "rect"
	default:
		return "hann"
	}
}

// STFTPlan computes the short-time Fourier transform of real signals: the
// signal is cut into frames of length Frame every Hop samples, each frame
// is windowed and transformed with a RealPlan (half spectrum), and
// Synthesize reconstructs the signal by weighted overlap-add. This is the
// streaming workload (many small transforms per second) for which the
// paper's low-overhead small-size parallel plans matter.
//
// An STFTPlan is safe for concurrent use: several goroutines can analyze
// different signals (or disjoint frame ranges) through one shared plan.
type STFTPlan struct {
	frame, hop int
	win        []float64
	winSq      []float64 // window², for the overlap-add normalization
	rp         *RealPlan
	ctxs       sync.Pool // *stftCtx
	// planCore carries the transform recorder — the nominal count is per
	// frame, 2.5·frame·log2(frame); Analyze/Synthesize record frames·that —
	// and delegates pool and barrier statistics to the inner real plan.
	planCore
}

// stftCtx is the per-call windowed-frame workspace.
type stftCtx struct {
	buf []float64
}

// NewSTFTPlan prepares an STFT with the given frame length (even ≥ 2) and
// hop (1 ≤ hop ≤ frame). Perfect reconstruction requires the window/hop
// pair to satisfy the constant-overlap-add condition; Hann with hop =
// frame/2 (the default pairing) does.
func NewSTFTPlan(frame, hop int, window Window, o *Options) (*STFTPlan, error) {
	if frame < 2 || frame%2 != 0 {
		return nil, fmt.Errorf("%w: STFT frame must be even ≥ 2, got %d", ErrInvalidSize, frame)
	}
	if hop < 1 || hop > frame {
		return nil, fmt.Errorf("%w: STFT hop %d out of range [1, %d]", ErrInvalidSize, hop, frame)
	}
	rp, err := NewRealPlan(frame, o)
	if err != nil {
		return nil, err
	}
	p := &STFTPlan{
		frame: frame,
		hop:   hop,
		win:   make([]float64, frame),
		winSq: make([]float64, frame),
		rp:    rp,
	}
	p.init(tkSTFT, int64(exec.FlopCount(frame)/2), 0)
	p.initRealLeases(frame, frame/2+1)
	p.inner = rp
	p.ctxs.New = func() any { return &stftCtx{buf: make([]float64, frame)} }
	for i := range p.win {
		var v float64
		switch window {
		case WindowHamming:
			v = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(frame-1))
		case WindowRect:
			v = 1
		default:
			v = 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(frame))
		}
		p.win[i] = v
		p.winSq[i] = v * v
	}
	return p, nil
}

// Frame returns the frame length.
func (p *STFTPlan) Frame() int { return p.frame }

// N returns the frame length (the per-frame transform size), satisfying the
// RealTransformer interface.
func (p *STFTPlan) N() int { return p.frame }

// Hop returns the hop size.
func (p *STFTPlan) Hop() int { return p.hop }

// Bins returns the per-frame spectrum length, frame/2 + 1.
func (p *STFTPlan) Bins() int { return p.frame/2 + 1 }

// NumFrames returns how many complete frames Analyze extracts from a signal
// of the given length (frames that would run past the end are dropped).
func (p *STFTPlan) NumFrames(signalLen int) int {
	if signalLen < p.frame {
		return 0
	}
	return (signalLen-p.frame)/p.hop + 1
}

// Forward computes the windowed spectrum of one frame: dst[k] =
// DFT(win ⊙ src)[k] for the Bins() non-redundant bins. len(src) must be
// Frame() and len(dst) must be Bins(). This is the per-frame primitive of
// Analyze, exposed for streaming callers that produce frames one at a time.
// Forward is safe for concurrent use.
func (p *STFTPlan) Forward(dst []complex128, src []float64) error {
	if len(src) != p.frame || len(dst) != p.Bins() {
		return fmt.Errorf("%w: STFT Forward: src %d (want %d), dst %d (want %d)",
			ErrLengthMismatch, len(src), p.frame, len(dst), p.Bins())
	}
	start := metrics.Now()
	ctx := p.ctxs.Get().(*stftCtx)
	defer p.ctxs.Put(ctx)
	for i := 0; i < p.frame; i++ {
		ctx.buf[i] = src[i] * p.win[i]
	}
	if err := p.rp.Forward(dst, ctx.buf); err != nil {
		return err
	}
	p.record(start)
	return nil
}

// Inverse computes the windowed inverse of one frame's spectrum: the real
// inverse DFT followed by the synthesis window — the per-frame step of
// Synthesize's weighted overlap-add. Exact reconstruction of a signal
// requires overlap-adding successive frames (use Synthesize); a lone frame
// additionally carries the window². len(src) must be Bins() and len(dst)
// must be Frame(). Inverse is safe for concurrent use.
func (p *STFTPlan) Inverse(dst []float64, src []complex128) error {
	if len(src) != p.Bins() || len(dst) != p.frame {
		return fmt.Errorf("%w: STFT Inverse: src %d (want %d), dst %d (want %d)",
			ErrLengthMismatch, len(src), p.Bins(), len(dst), p.frame)
	}
	start := metrics.Now()
	if err := p.rp.Inverse(dst, src); err != nil {
		return err
	}
	for i := 0; i < p.frame; i++ {
		dst[i] *= p.win[i]
	}
	p.record(start)
	return nil
}

// Analyze computes the spectrogram of signal: dst must have NumFrames rows
// of Bins() elements each (allocate with NewSpectrogram).
// Analyze is safe for concurrent use.
func (p *STFTPlan) Analyze(dst [][]complex128, signal []float64) error {
	return p.AnalyzeCtx(nil, dst, signal)
}

// AnalyzeCtx is Analyze under a context: cancellation is observed between
// frames (and inside each frame's transform at region boundaries), so a
// long spectrogram pass abandons within about one frame of a cancel. On
// cancellation the error is ctx.Err() and dst holds the frames completed so
// far. A nil ctx behaves like Analyze.
func (p *STFTPlan) AnalyzeCtx(cctx context.Context, dst [][]complex128, signal []float64) error {
	frames := p.NumFrames(len(signal))
	if len(dst) != frames {
		return fmt.Errorf("%w: Analyze needs %d frames, got %d", ErrLengthMismatch, frames, len(dst))
	}
	start := metrics.Now()
	ctx := p.ctxs.Get().(*stftCtx)
	defer p.ctxs.Put(ctx)
	for f := 0; f < frames; f++ {
		if cctx != nil {
			if err := cctx.Err(); err != nil {
				return err
			}
		}
		if len(dst[f]) != p.Bins() {
			return fmt.Errorf("%w: frame %d has %d bins, want %d", ErrLengthMismatch, f, len(dst[f]), p.Bins())
		}
		off := f * p.hop
		for i := 0; i < p.frame; i++ {
			ctx.buf[i] = signal[off+i] * p.win[i]
		}
		if err := p.rp.ForwardCtx(cctx, dst[f], ctx.buf); err != nil {
			return err
		}
	}
	p.recordN(start, int64(frames)*p.flops)
	return nil
}

// NewSpectrogram allocates an Analyze output for a signal of the given length.
func (p *STFTPlan) NewSpectrogram(signalLen int) [][]complex128 {
	frames := p.NumFrames(signalLen)
	out := make([][]complex128, frames)
	for f := range out {
		out[f] = make([]complex128, p.Bins())
	}
	return out
}

// Synthesize reconstructs a signal from a spectrogram by weighted
// overlap-add: each frame is inverse-transformed, windowed again, and
// accumulated; the sum of squared windows normalizes the overlap. signal
// must have length ≥ (frames-1)·hop + frame. Samples whose window-energy
// sum is zero (possible only at the very edges with exotic hop choices)
// are left zero.
func (p *STFTPlan) Synthesize(signal []float64, frames [][]complex128) error {
	return p.SynthesizeCtx(nil, signal, frames)
}

// SynthesizeCtx is Synthesize under a context: cancellation is observed
// between frames; on cancellation the error is ctx.Err() and signal is
// unspecified (partially accumulated). A nil ctx behaves like Synthesize.
func (p *STFTPlan) SynthesizeCtx(cctx context.Context, signal []float64, frames [][]complex128) error {
	if len(frames) == 0 {
		return nil
	}
	need := (len(frames)-1)*p.hop + p.frame
	if len(signal) < need {
		return fmt.Errorf("%w: Synthesize needs %d samples, got %d", ErrLengthMismatch, need, len(signal))
	}
	start := metrics.Now()
	ctx := p.ctxs.Get().(*stftCtx)
	defer p.ctxs.Put(ctx)
	norm := make([]float64, len(signal))
	for i := range signal {
		signal[i] = 0
	}
	for f, spec := range frames {
		if cctx != nil {
			if err := cctx.Err(); err != nil {
				return err
			}
		}
		if len(spec) != p.Bins() {
			return fmt.Errorf("%w: frame %d has %d bins, want %d", ErrLengthMismatch, f, len(spec), p.Bins())
		}
		if err := p.rp.InverseCtx(cctx, ctx.buf, spec); err != nil {
			return err
		}
		off := f * p.hop
		for i := 0; i < p.frame; i++ {
			signal[off+i] += ctx.buf[i] * p.win[i]
			norm[off+i] += p.winSq[i]
		}
	}
	for i := range signal {
		if norm[i] > 1e-12 {
			signal[i] /= norm[i]
		}
	}
	p.recordN(start, int64(len(frames))*p.flops)
	return nil
}

// Close releases the inner plan's resources.
func (p *STFTPlan) Close() { p.rp.Close() }
