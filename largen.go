package spiralfft

import (
	"context"
	"errors"
	"math"

	"spiralfft/internal/cost"
	"spiralfft/internal/exec"
	"spiralfft/internal/ir"
	"spiralfft/internal/search"
	"spiralfft/internal/smp"
)

// The enormous-FFT tier. Beyond Options.LargeNThreshold the tree planner's
// recursive schedule stops making sense: its stage-2 column walks stride
// across the whole N-element buffer (one memory line per element) and its
// root twiddle diagonal is an O(N) resident table. This tier lowers such
// sizes through the four-step decomposition instead (ir.LowerFourStep):
// contiguous column and row sub-FFTs around explicit cache-blocked
// transposes, with every twiddle row generated on the fly into O(n1) worker
// scratch. The sub-FFTs reuse the ordinary tree planner, so the whole
// codelet tier and wisdom-free tuning machinery carries over; the (n1, tile)
// choice itself is ranked by the analytic model and only the top candidates
// are measured inside PlanBudget (search.BestFourStepCtx).
//
// The tier deliberately does not consult or feed the Wisdom store: wisdom
// slots hold factorization trees, and recording a tree for these sizes would
// invite a later plan to build it through the tree executor — materializing
// exactly the O(N) twiddle state the tier exists to avoid.

// DefaultLargeNThreshold is the transform size at which NewPlan switches to
// the four-step large-N tier when Options.LargeNThreshold is left zero:
// 2^22 complex128 elements (64 MiB per buffer) dwarfs every cache level the
// cost model knows about.
const DefaultLargeNThreshold = 1 << 22

// errNoFourStepSplit reports a size the four-step tier cannot decompose
// (prime, or no µ-aligned factor pair for the requested worker count); the
// caller falls back to the tree planner.
var errNoFourStepSplit = errors.New("spiralfft: no admissible four-step split")

// fourStepInfo records the large-N tier's choice on the plan.
type fourStepInfo struct {
	n1, tile int
}

// fourStepSplitFor reports whether an admissible split n = n1·n2 exists for
// the four-step schedule on p workers with cache-line length mu (both
// factors multiples of µ and at least p when p > 1).
func fourStepSplitFor(n, p, mu int) (n1 int, ok bool) {
	for m := 2; m*m <= n; m++ {
		if n%m != 0 {
			continue
		}
		k := n / m
		if p > 1 && (m%mu != 0 || k%mu != 0 || m < p || k < p) {
			continue
		}
		n1, ok = m, true
	}
	return n1, ok
}

// fourStepChoiceFor ranks every admissible (n1, tile) pair with the analytic
// cost model and returns the cheapest, or ok == false when no admissible
// split exists. This is the fixed planner's stand-in for measurement: fully
// deterministic, and at the sizes this tier serves the model's memory-traffic
// terms dominate the ordering — notably the column-gather term, which breaks
// the n1 ↔ n2 symmetry toward skewed splits with a cache-resident n2. A
// model tie goes to the larger n1, matching the measured preference.
func fourStepChoiceFor(n, p, mu int) (n1, tile int, ok bool) {
	model := cost.Default()
	best := math.Inf(1)
	for d := 2; d*d <= n; d++ {
		if n%d != 0 {
			continue
		}
		for _, c := range [2]int{d, n / d} {
			k := n / c
			if k < 2 {
				continue
			}
			if p > 1 && (c%mu != 0 || k%mu != 0 || c < p || k < p) {
				continue
			}
			for _, t := range search.TransposeTiles {
				s := model.FourStep(n, c, p, t, nil, nil)
				if s < best || (s == best && c > n1) {
					best, n1, tile, ok = s, c, t, true
				}
			}
		}
	}
	return n1, tile, ok
}

// planFourStep builds the plan through the large-N tier. On success the plan
// serves transforms without ever holding an O(N) twiddle table: seqExe runs
// the sequential four-step program, and for Workers > 1 exe runs the
// worker-partitioned variant of the same split (seqExe stays as the
// post-Close fallback, mirroring the tree families). Returns
// errNoFourStepSplit (or a tuning error) when the tier cannot serve the
// size; the caller then falls back to the tree planner.
func (p *Plan) planFourStep(tuner *search.Tuner) error {
	opt := p.opt
	n := p.n
	if opt.Planner == PlannerFixed {
		// Deterministic path: model-ranked (n1, tile) with greedy radix
		// sub-trees. No measurements, like the tree planner's fixed path.
		n1, tile, ok := fourStepChoiceFor(n, opt.Workers, opt.CacheLineComplex)
		if !ok {
			if n1, tile, ok = fourStepChoiceFor(n, 1, opt.CacheLineComplex); !ok {
				return errNoFourStepSplit
			}
			// Split exists but not for p workers: run the tier sequentially.
			return p.buildFourStep(n1, tile,
				exec.RadixTree(n/n1), exec.RadixTree(n1), nil)
		}
		var backend smp.Backend
		if opt.Workers > 1 {
			backend = newBackendFor(opt, opt.Workers)
		}
		return p.buildFourStep(n1, tile,
			exec.RadixTree(n/n1), exec.RadixTree(n1), backend)
	}

	// Tuned path: the search ranks every (n1, tile) pair analytically and
	// measures the top candidates inside the active budget.
	workers := 1
	var backend smp.Backend
	if opt.Workers > 1 {
		if _, ok := fourStepSplitFor(n, opt.Workers, opt.CacheLineComplex); ok {
			workers = opt.Workers
			backend = newBackendFor(opt, workers)
		}
	}
	choice, err := tuner.BestFourStepCtx(context.Background(), n, workers, opt.CacheLineComplex, backend)
	if err != nil {
		if backend != nil {
			backend.Close()
		}
		return err
	}
	p.fourStep = &fourStepInfo{n1: choice.N1, tile: choice.Tile}
	p.m, p.ltree, p.rtree = choice.N1, choice.RowTree, choice.ColTree
	if backend != nil {
		// The winner references the backend; a sequential variant of the
		// same split stays behind as the post-Close fallback.
		p.exe, p.backend = choice.Exe, backend
		seqProg, err := ir.LowerFourStep(n, choice.N1, ir.FourStepConfig{
			P: 1, Mu: opt.CacheLineComplex, Tile: choice.Tile,
			ColTree: choice.ColTree, RowTree: choice.RowTree,
		})
		if err == nil {
			p.seqExe, err = ir.NewExecutor(seqProg, nil)
		}
		if err != nil {
			backend.Close()
			p.exe, p.backend, p.fourStep = nil, nil, nil
			return err
		}
		return nil
	}
	p.seqExe = choice.Exe
	return nil
}

// buildFourStep lowers and compiles the four-step schedule for a fixed
// (n1, tile) choice: the sequential program into seqExe always, and the
// worker-partitioned program onto the backend when one is supplied (the
// backend is closed on failure).
func (p *Plan) buildFourStep(n1, tile int, col, row *exec.Tree, backend smp.Backend) error {
	opt := p.opt
	seqProg, err := ir.LowerFourStep(p.n, n1, ir.FourStepConfig{
		P: 1, Mu: opt.CacheLineComplex, Tile: tile, ColTree: col, RowTree: row,
	})
	if err == nil {
		p.seqExe, err = ir.NewExecutor(seqProg, nil)
	}
	if err != nil {
		if backend != nil {
			backend.Close()
		}
		return err
	}
	p.fourStep = &fourStepInfo{n1: n1, tile: tile}
	p.m, p.ltree, p.rtree = n1, row, col
	if backend == nil {
		return nil
	}
	parProg, err := ir.LowerFourStep(p.n, n1, ir.FourStepConfig{
		P: opt.Workers, Mu: opt.CacheLineComplex, Tile: tile, ColTree: col, RowTree: row,
	})
	if err == nil {
		var exe *ir.Executor
		if exe, err = ir.NewExecutor(parProg, backend); err == nil {
			p.exe, p.backend = exe, backend
			return nil
		}
	}
	// The sequential four-step executor is already in place; a parallel
	// compile failure degrades to sequential service rather than failing
	// the plan.
	backend.Close()
	return nil
}
