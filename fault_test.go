package spiralfft

import (
	"context"
	"errors"
	"strings"
	"testing"

	"spiralfft/internal/complexvec"
	"spiralfft/internal/faultinject"
)

// TestTransformRegionPanicContainment is the acceptance test for the fault
// containment chain: a panic injected into worker 1 of a 4-worker parallel
// plan must surface on the caller's goroutine as a *RegionPanicError naming
// that worker, and the very same plan (same pool) must then complete a
// correct transform before Close.
func TestTransformRegionPanicContainment(t *testing.T) {
	p, err := NewPlan(1024, &Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if !p.IsParallel() {
		t.Fatalf("1024-point 4-worker plan is not parallel (tree %s)", p.Tree())
	}
	x := complexvec.Random(1024, 7)
	dst := make([]complex128, 1024)

	func() {
		disarm := faultinject.Arm(faultinject.Config{Worker: 1, PanicAt: 1})
		defer disarm()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("injected worker panic was swallowed by Forward")
			}
			rp, ok := r.(*RegionPanicError)
			if !ok {
				t.Fatalf("re-panic value is %T (%v), want *RegionPanicError", r, r)
			}
			if rp.Worker != 1 {
				t.Errorf("RegionPanicError.Worker = %d, want 1", rp.Worker)
			}
			if !strings.Contains(rp.Error(), "worker 1") {
				t.Errorf("error text does not name the worker: %s", rp.Error())
			}
			if len(rp.Stack) == 0 {
				t.Error("no worker stack captured")
			}
		}()
		p.Forward(dst, x)
	}()

	// The same plan — same executor, same pool — must now work.
	if err := p.Forward(dst, x); err != nil {
		t.Fatalf("post-panic Forward: %v", err)
	}
	if e := complexvec.RelError(dst, refDFT(x)); e > tol {
		t.Errorf("post-panic transform wrong by %g", e)
	}
}

// TestRegionPanicErrorUnwrap: a panic(err) inside a region must stay
// matchable with errors.Is through the RegionPanicError chain.
func TestRegionPanicErrorUnwrap(t *testing.T) {
	p, err := NewPlan(1024, &Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	sentinel := errors.New("poisoned twiddle table")
	disarm := faultinject.Arm(faultinject.Config{Worker: 2, PanicAt: 1, PanicValue: sentinel})
	defer disarm()
	defer func() {
		r := recover()
		rp, ok := r.(*RegionPanicError)
		if !ok {
			t.Fatalf("re-panic value is %T, want *RegionPanicError", r)
		}
		if !errors.Is(rp, sentinel) {
			t.Error("errors.Is(rp, sentinel) = false; Unwrap chain broken")
		}
	}()
	dst := make([]complex128, 1024)
	p.Forward(dst, complexvec.Random(1024, 8))
}

// TestForwardCtxPreCancelled: an already-cancelled context returns promptly
// without entering a single region, for both execution paths.
func TestForwardCtxPreCancelled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p, err := NewPlan(1024, &Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		// Counting-only arm: every region entry bumps the counter.
		disarm := faultinject.Arm(faultinject.Config{Worker: faultinject.AnyWorker})
		dst := make([]complex128, 1024)
		err = p.ForwardCtx(ctx, dst, make([]complex128, 1024))
		ran := faultinject.Count()
		disarm()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: ForwardCtx = %v, want context.Canceled", workers, err)
		}
		if ran != 0 {
			t.Errorf("workers=%d: %d region entries ran despite pre-cancelled ctx", workers, ran)
		}
		p.Close()
	}
}

// TestForwardCtxCancelMidTransform cancels via the injection hook as worker
// 0 enters its first region: the call returns ctx.Err() and the plan remains
// fully usable.
func TestForwardCtxCancelMidTransform(t *testing.T) {
	p, err := NewPlan(1024, &Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	x := complexvec.Random(1024, 9)
	dst := make([]complex128, 1024)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	disarm := faultinject.Arm(faultinject.Config{Worker: 0, CancelAt: 1, Cancel: cancel})
	err = p.ForwardCtx(ctx, dst, x)
	disarm()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForwardCtx = %v, want context.Canceled", err)
	}
	if err := p.ForwardCtx(context.Background(), dst, x); err != nil {
		t.Fatalf("post-cancel ForwardCtx: %v", err)
	}
	if e := complexvec.RelError(dst, refDFT(x)); e > tol {
		t.Errorf("post-cancel transform wrong by %g", e)
	}
}

// TestInverseCtxCancelled covers the inverse path's cancellation plumbing
// (it runs through a pooled conjugation workspace that must be returned).
func TestInverseCtxCancelled(t *testing.T) {
	p, err := NewPlan(256, &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dst := make([]complex128, 256)
	if err := p.InverseCtx(ctx, dst, make([]complex128, 256)); !errors.Is(err, context.Canceled) {
		t.Fatalf("InverseCtx = %v, want context.Canceled", err)
	}
	// The workspace went back to the pool; a plain Inverse still works.
	x := complexvec.Random(256, 10)
	fwd := make([]complex128, 256)
	if err := p.Forward(fwd, x); err != nil {
		t.Fatal(err)
	}
	if err := p.Inverse(dst, fwd); err != nil {
		t.Fatal(err)
	}
	if e := complexvec.RelError(dst, x); e > tol {
		t.Errorf("post-cancel roundtrip wrong by %g", e)
	}
}

// TestPlan2DCtxDeterministicPrefix pins down the "deterministic prefix"
// clause of the cancellation contract on the sequential 2D program, whose
// region structure is exactly [rows | barrier | cols]: a context cancelled
// at the first region entry lets the row stage finish and skips the column
// stage, so dst holds the per-row DFTs of src.
func TestPlan2DCtxDeterministicPrefix(t *testing.T) {
	const rows, cols = 8, 16
	p, err := NewPlan2D(rows, cols, &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.IsParallel() {
		t.Fatal("expected a sequential 2D plan")
	}
	x := complexvec.Random(rows*cols, 11)
	dst := make([]complex128, rows*cols)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The hook fires at the program's first region entry — after the
	// pre-transform ctx check, before the stage barrier observes it.
	disarm := faultinject.Arm(faultinject.Config{Worker: 0, CancelAt: 1, Cancel: cancel})
	err = p.ForwardCtx(ctx, dst, x)
	disarm()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForwardCtx = %v, want context.Canceled", err)
	}
	for r := 0; r < rows; r++ {
		got := dst[r*cols : (r+1)*cols]
		want := refDFT(x[r*cols : (r+1)*cols])
		if e := complexvec.RelError(got, want); e > tol {
			t.Errorf("row %d is not the row-stage DFT (err %g): column stage ran past the cancel", r, e)
		}
	}
	// And uncancelled, the same plan computes the full 2D transform.
	if err := p.Forward(dst, x); err != nil {
		t.Fatal(err)
	}
	want := ref2D(x, rows, cols)
	if e := complexvec.RelError(dst, want); e > tol {
		t.Errorf("post-cancel 2D transform wrong by %g", e)
	}
}

// TestSTFTAnalyzeCtxCancelled: the frame loop observes cancellation between
// frames.
func TestSTFTAnalyzeCtxCancelled(t *testing.T) {
	p, err := NewSTFTPlan(64, 32, WindowHann, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	signal := make([]float64, 64*8)
	for i := range signal {
		signal[i] = float64(i % 17)
	}
	dst := p.NewSpectrogram(len(signal))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.AnalyzeCtx(ctx, dst, signal); !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeCtx = %v, want context.Canceled", err)
	}
	if err := p.Analyze(dst, signal); err != nil {
		t.Fatalf("post-cancel Analyze: %v", err)
	}
}
