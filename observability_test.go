package spiralfft

import (
	"encoding/json"
	"expvar"
	"strings"
	"sync"
	"testing"
	"time"

	"spiralfft/internal/complexvec"
)

// TestMetricsDisabledZeroAlloc pins the observability layer's core promise:
// with metrics disabled (the default), the instrumentation threaded through
// every plan's hot path adds zero allocations per transform.
func TestMetricsDisabledZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop items at random; allocation counts are meaningless")
	}
	if MetricsEnabled() {
		t.Fatal("metrics must be disabled by default")
	}
	for _, c := range []struct {
		name string
		opts *Options
	}{
		{"sequential", nil},
		{"parallel-pool", &Options{Workers: 2}},
	} {
		p, err := NewPlan(512, c.opts)
		if err != nil {
			t.Fatal(err)
		}
		x := complexvec.Random(512, 1)
		y := make([]complex128, 512)
		p.Forward(y, x) // warm up pooled contexts
		if got := testing.AllocsPerRun(100, func() { p.Forward(y, x) }); got > 0 {
			t.Errorf("%s: %.1f allocs/op with metrics disabled", c.name, got)
		}
		p.Close()
	}
}

// TestPlanSnapshotLifecycle walks one parallel plan through the full
// observability story: counts-only while disabled, timing once enabled, and
// a stable snapshot after Close.
func TestPlanSnapshotLifecycle(t *testing.T) {
	DisableMetrics()
	p, err := NewPlan(1024, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := complexvec.Random(1024, 2)
	y := make([]complex128, 1024)

	p.Forward(y, x)
	st := p.Snapshot()
	if st.Transforms != 1 {
		t.Errorf("Transforms = %d, want 1", st.Transforms)
	}
	if st.Timed != 0 || st.PseudoMflops != 0 {
		t.Errorf("disabled metrics leaked timing: %+v", st.TransformStats)
	}
	if p.IsParallel() && st.Pool == nil {
		t.Error("parallel pooled plan must report pool stats")
	}

	EnableMetrics()
	p.Forward(y, x)
	p.Inverse(y, x)
	DisableMetrics()
	st = p.Snapshot()
	if st.Transforms != 3 || st.Timed != 2 {
		t.Errorf("Transforms = %d, Timed = %d, want 3 and 2", st.Transforms, st.Timed)
	}
	if st.PseudoMflops <= 0 || st.AvgTime <= 0 || st.P99 <= 0 {
		t.Errorf("timed stats empty: %+v", st.TransformStats)
	}
	if st.Pool != nil && st.Pool.Regions == 0 {
		t.Error("pool saw no regions despite parallel transforms")
	}

	preClose := p.Snapshot()
	p.Close()
	post := p.Snapshot()
	if post.Transforms != preClose.Transforms {
		t.Errorf("Close changed transform count: %d → %d", preClose.Transforms, post.Transforms)
	}
	if preClose.Pool != nil {
		if post.Pool == nil {
			t.Fatal("pool stats lost on Close")
		}
		if post.Pool.Regions != preClose.Pool.Regions {
			t.Errorf("Close changed pool regions: %d → %d", preClose.Pool.Regions, post.Pool.Regions)
		}
	}
}

// TestAllPlanTypesRecordTransforms drives each of the seven plan types once
// with metrics enabled and checks its Snapshot recorded a timed transform
// with a positive pseudo-Mflop/s rate.
func TestAllPlanTypesRecordTransforms(t *testing.T) {
	EnableMetrics()
	defer DisableMetrics()

	snapshots := map[string]func() PlanStats{}

	p, err := NewPlan(256, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	x := complexvec.Random(256, 1)
	y := make([]complex128, 256)
	p.Forward(y, x)
	snapshots["Plan"] = p.Snapshot

	rp, err := NewRealPlan(256, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()
	xr := randomReal(256, 1)
	spec := make([]complex128, 129)
	rp.Forward(spec, xr)
	snapshots["RealPlan"] = rp.Snapshot

	bp, err := NewBatchPlan(64, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer bp.Close()
	bx := complexvec.Random(64*4, 1)
	by := make([]complex128, 64*4)
	bp.Forward(by, bx)
	snapshots["BatchPlan"] = bp.Snapshot

	p2, err := NewPlan2D(16, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	x2 := complexvec.Random(256, 1)
	y2 := make([]complex128, 256)
	p2.Forward(y2, x2)
	snapshots["Plan2D"] = p2.Snapshot

	wp, err := NewWHTPlan(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer wp.Close()
	wx := complexvec.Random(64, 1)
	wy := make([]complex128, 64)
	wp.Transform(wy, wx)
	snapshots["WHTPlan"] = wp.Snapshot

	dp, err := NewDCTPlan(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer dp.Close()
	dx := randomReal(64, 1)
	dy := make([]float64, 64)
	dp.Forward(dy, dx)
	snapshots["DCTPlan"] = dp.Snapshot

	sp, err := NewSTFTPlan(64, 32, WindowHann, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	sig := randomReal(256, 1)
	sgram := sp.NewSpectrogram(256)
	sp.Analyze(sgram, sig)
	snapshots["STFTPlan"] = sp.Snapshot

	for name, snap := range snapshots {
		st := snap()
		if st.Transforms < 1 || st.Timed < 1 {
			t.Errorf("%s: Transforms = %d, Timed = %d", name, st.Transforms, st.Timed)
		}
		if st.PseudoMflops <= 0 {
			t.Errorf("%s: PseudoMflops = %v", name, st.PseudoMflops)
		}
	}

	totals := TransformTotals()
	for _, family := range []string{"dft", "real", "batch", "dft2d", "wht", "dct", "stft"} {
		if totals[family].Transforms < 1 {
			t.Errorf("TransformTotals missing family %q: %+v", family, totals)
		}
	}
}

// TestCacheCounters exercises the cache's observability: hit/miss
// bookkeeping, single-flight waits while a build is in flight, and eviction
// counts on Close.
func TestCacheCounters(t *testing.T) {
	var c Cache

	p1, err := c.Plan(128, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Plan(128, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("cache returned distinct plans for one key")
	}
	rp, err := c.RealPlan(128, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Live != 2 {
		t.Errorf("stats = %+v, want 1 hit / 2 misses / 2 live", st)
	}
	if got := st.HitRate(); got < 0.33 || got > 0.34 {
		t.Errorf("HitRate = %v, want ~1/3", got)
	}
	if c.Snapshot() != st {
		t.Error("Snapshot and Stats disagree")
	}

	c.Close()
	if got := c.Stats(); got.Evictions != 2 || got.Live != 0 {
		t.Errorf("after Close: %+v, want 2 evictions / 0 live", got)
	}
	p1.Close()
	p2.Close()
	rp.Close()

	if (CacheStats{}).HitRate() != 0 {
		t.Error("empty HitRate must be 0")
	}
}

// TestCacheSingleflightWaitCounter arranges requests that demonstrably land
// while the first build is in flight: the builder is slowed by measured
// planning, and the waiters launch as soon as the miss is recorded (which
// happens before planning starts).
func TestCacheSingleflightWaitCounter(t *testing.T) {
	if testing.Short() {
		t.Skip("uses measured planning to stretch the build window")
	}
	opts := &Options{Planner: PlannerMeasure}
	for attempt, n := range []int{1 << 10, 1 << 12, 1 << 14} {
		var c Cache
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if p, err := c.Plan(n, opts); err == nil {
				p.Close()
			}
		}()
		for c.Stats().Misses == 0 { // miss is counted before the build starts
			time.Sleep(50 * time.Microsecond)
		}
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if p, err := c.Plan(n, opts); err == nil {
					p.Close()
				}
			}()
		}
		wg.Wait()
		st := c.Stats()
		c.Close()
		if st.SingleflightWaits > 0 {
			if st.Hits < st.SingleflightWaits {
				t.Errorf("waits %d exceed hits %d", st.SingleflightWaits, st.Hits)
			}
			return // observed what we came for
		}
		t.Logf("attempt %d (n=%d): build finished before waiters arrived, escalating", attempt, n)
	}
	t.Error("no single-flight wait observed even with a 16k measured build")
}

// TestExposeExpvar checks the standard-library export: the three published
// vars render as JSON with the expected fields, and double publication does
// not panic.
func TestExposeExpvar(t *testing.T) {
	ExposeExpvar()
	ExposeExpvar() // idempotent

	// Put something in the default cache and run a transform so every
	// exported map has content.
	p, err := CachedPlan(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	x := complexvec.Random(64, 1)
	y := make([]complex128, 64)
	p.Forward(y, x)

	for name, wantField := range map[string]string{
		"spiralfft.cache":      "Misses",
		"spiralfft.pools":      "Regions",
		"spiralfft.transforms": "dft",
	} {
		v := expvar.Get(name)
		if v == nil {
			t.Fatalf("expvar %q not published", name)
		}
		js := v.String()
		if !json.Valid([]byte(js)) {
			t.Errorf("%s: invalid JSON: %s", name, js)
		}
		if !strings.Contains(js, wantField) {
			t.Errorf("%s: missing %q in %s", name, wantField, js)
		}
	}
}

// TestPoolTotalsGrowWithUse: creating and driving a pooled plan must be
// visible in the process-wide pool aggregate, including after Close.
func TestPoolTotalsGrowWithUse(t *testing.T) {
	before := PoolTotals()
	p, err := NewPlan(1024, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := complexvec.Random(1024, 4)
	y := make([]complex128, 1024)
	p.Forward(y, x)
	parallel := p.IsParallel()
	p.Close()
	after := PoolTotals()
	if after.Pools <= before.Pools {
		t.Errorf("pool count did not grow: %d → %d", before.Pools, after.Pools)
	}
	if parallel && after.Regions <= before.Regions {
		t.Errorf("aggregate regions did not grow: %d → %d", before.Regions, after.Regions)
	}
}
