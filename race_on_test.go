//go:build race

package spiralfft

const raceEnabled = true
