// Filterbank: multichannel overlap-save FIR filtering in the frequency
// domain — a streaming DSP workload that transforms many small blocks per
// second, the regime the paper's low-overhead parallel plans target.
//
// 16 channels of noisy data are band-pass filtered simultaneously: the
// filter is applied as a pointwise spectral product using a BatchPlan
// (I_channels ⊗ DFT_block, parallelized across the batch by rule (9)), and
// the result is checked channel by channel against direct time-domain
// convolution. A RealPlan designs the band-pass prototype.
//
// Run with:  go run ./examples/filterbank
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"

	"spiralfft"
)

const (
	channels = 16
	block    = 512 // FFT block length
	taps     = 129 // FIR length (odd, linear phase)
	useful   = block - taps + 1
)

func main() {
	// Design a linear-phase band-pass FIR (windowed sinc difference) and
	// inspect its response with a RealPlan — passband roughly [0.1, 0.25]
	// of the sample rate.
	h := design(taps, 0.10, 0.25)
	checkResponse(h)

	// Per-channel signals: a tone inside the passband plus one outside,
	// plus noise; tones differ per channel.
	inputs := make([][]float64, channels)
	for c := range inputs {
		inputs[c] = makeSignal(c, useful+taps-1)
	}

	// Frequency-domain filter: H = DFT(zero-padded h).
	plan, err := spiralfft.NewPlan(block, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer plan.Close()
	hPad := make([]complex128, block)
	for i, v := range h {
		hPad[i] = complex(v, 0)
	}
	H := make([]complex128, block)
	if err := plan.Forward(H, hPad); err != nil {
		log.Fatal(err)
	}

	// Batch the channels: one flat buffer, one parallel batch transform.
	batch, err := spiralfft.NewBatchPlan(block, channels, &spiralfft.Options{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer batch.Close()
	fmt.Printf("filtering %d channels, block %d, %d taps (batch on %d workers)\n",
		channels, block, taps, batch.Workers())

	buf := make([]complex128, block*channels)
	for c := 0; c < channels; c++ {
		for j, v := range inputs[c] {
			buf[c*block+j] = complex(v, 0)
		}
	}
	if err := batch.Forward(buf, buf); err != nil {
		log.Fatal(err)
	}
	for c := 0; c < channels; c++ {
		for k := 0; k < block; k++ {
			buf[c*block+k] *= H[k]
		}
	}
	if err := batch.Inverse(buf, buf); err != nil {
		log.Fatal(err)
	}

	// Verify every channel against direct convolution on the valid region
	// (overlap-save: outputs taps-1 .. block-1 are the linear convolution).
	worst := 0.0
	for c := 0; c < channels; c++ {
		ref := convolve(inputs[c], h)
		for j := taps - 1; j < block; j++ {
			d := math.Abs(real(buf[c*block+j]) - ref[j])
			if d > worst {
				worst = d
			}
		}
	}
	fmt.Printf("max deviation from direct convolution over %d outputs: %.3g\n",
		channels*useful, worst)
	if worst > 1e-9 {
		log.Fatal("filterbank output mismatch")
	}
	fmt.Println("all channels verified against time-domain convolution")
}

// design returns a Hamming-windowed band-pass FIR.
func design(n int, lo, hi float64) []float64 {
	h := make([]float64, n)
	mid := (n - 1) / 2
	for i := range h {
		t := float64(i - mid)
		var v float64
		if t == 0 {
			v = 2 * (hi - lo)
		} else {
			v = (math.Sin(2*math.Pi*hi*t) - math.Sin(2*math.Pi*lo*t)) / (math.Pi * t)
		}
		w := 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
		h[i] = v * w
	}
	return h
}

// checkResponse verifies the passband/stopband behaviour via RealPlan.
func checkResponse(h []float64) {
	const m = 1024
	rp, err := spiralfft.NewRealPlan(m, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer rp.Close()
	pad := make([]float64, m)
	copy(pad, h)
	spec := make([]complex128, m/2+1)
	if err := rp.Forward(spec, pad); err != nil {
		log.Fatal(err)
	}
	mf := float64(m)
	pass := cmplx.Abs(spec[int(0.17*mf)]) // inside [0.10, 0.25]
	stop := cmplx.Abs(spec[int(0.40*mf)]) // well outside
	fmt.Printf("prototype response: |H(pass)| = %.3f, |H(stop)| = %.2g\n", pass, stop)
	if pass < 0.9 || stop > 0.05 {
		log.Fatal("filter design out of spec")
	}
}

func makeSignal(ch, n int) []float64 {
	x := make([]float64, n)
	fPass := 0.12 + 0.01*float64(ch%8) // inside the passband
	fStop := 0.35 + 0.01*float64(ch%4) // outside
	s := uint64(ch)*2862933555777941757 + 3037000493
	for j := range x {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		noise := (float64(int64(s>>11))/float64(1<<52) - 1) * 0.05
		x[j] = math.Sin(2*math.Pi*fPass*float64(j)) +
			0.8*math.Sin(2*math.Pi*fStop*float64(j)) + noise
	}
	return x
}

// convolve returns the first len(x) samples of x * h.
func convolve(x, h []float64) []float64 {
	out := make([]float64, len(x))
	for i := range out {
		for j := 0; j < len(h) && j <= i; j++ {
			out[i] += h[j] * x[i-j]
		}
	}
	return out
}
