// Spectral analysis: Welch-style averaged periodogram over a long noisy
// signal, the workload class (streaming DSP) that motivates small- and
// mid-size DFTs — exactly the sizes where the paper's multicore Cooley-
// Tukey FFT wins, because a pooled parallel plan pays off even for
// L1-resident segment lengths.
//
// The example hides three tones in noise, estimates the power spectrum by
// averaging windowed segment periodograms, and recovers the tone bins.
//
// Run with:  go run ./examples/spectral
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"spiralfft"
)

const (
	segLen   = 1024 // per-segment DFT size (in-cache: the paper's sweet spot)
	segments = 200
)

func main() {
	// Three tones at known normalized frequencies, SNR well below 0 dB per
	// sample so single-segment detection would be unreliable.
	tones := []struct {
		bin int
		amp float64
	}{{97, 0.20}, {233, 0.15}, {410, 0.10}}

	signal := make([]float64, segLen*segments)
	noise := rng(42)
	for j := range signal {
		s := 1.5 * noise() // strong white noise
		for _, t := range tones {
			s += t.amp * math.Sin(2*math.Pi*float64(t.bin)*float64(j)/segLen)
		}
		signal[j] = s
	}

	// One reusable parallel plan processes every segment.
	plan, err := spiralfft.NewPlan(segLen, &spiralfft.Options{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer plan.Close()
	fmt.Printf("averaging %d segments of %d samples (plan: %s, parallel=%v)\n",
		segments, segLen, plan.Tree(), plan.IsParallel())

	psd := make([]float64, segLen)
	seg := make([]complex128, segLen)
	freq := make([]complex128, segLen)
	for s := 0; s < segments; s++ {
		base := s * segLen
		for j := 0; j < segLen; j++ {
			// Hann window keeps leakage below the noise floor.
			w := 0.5 - 0.5*math.Cos(2*math.Pi*float64(j)/(segLen-1))
			seg[j] = complex(signal[base+j]*w, 0)
		}
		if err := plan.Forward(freq, seg); err != nil {
			log.Fatal(err)
		}
		for k := 0; k < segLen; k++ {
			re, im := real(freq[k]), imag(freq[k])
			psd[k] += re*re + im*im
		}
	}

	// Find the strongest bins in the first half (real signal: symmetric).
	type peak struct {
		bin int
		pow float64
	}
	peaks := make([]peak, segLen/2)
	for k := range peaks {
		peaks[k] = peak{k, psd[k]}
	}
	sort.Slice(peaks, func(i, j int) bool { return peaks[i].pow > peaks[j].pow })

	fmt.Println("strongest bins (expect the three planted tones on top):")
	found := map[int]bool{}
	for i := 0; i < 6; i++ {
		fmt.Printf("  bin %4d  power %12.1f\n", peaks[i].bin, peaks[i].pow)
		for _, t := range tones {
			if peaks[i].bin == t.bin {
				found[t.bin] = true
			}
		}
	}
	if len(found) != len(tones) {
		log.Fatalf("only recovered %d of %d tones", len(found), len(tones))
	}
	fmt.Println("all planted tones recovered")
}

// rng returns a deterministic approximately-Gaussian noise source
// (sum of uniforms).
func rng(seed uint64) func() float64 {
	s := seed*2862933555777941757 + 3037000493
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(int64(s>>11))/float64(1<<52) - 1
	}
	return func() float64 {
		return (next() + next() + next()) / 3
	}
}
