// Quickstart: plan a DFT, transform, invert, and inspect what the program
// generator produced (factorization tree, SPL formula, full derivation).
//
// Run with:  go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"spiralfft"
)

func main() {
	const n = 256

	// Plan a 2-way parallel transform (pooled workers, spin barriers —
	// the paper's pthreads backend). Plans are reusable; Close releases
	// the worker pool.
	plan, err := spiralfft.NewPlan(n, &spiralfft.Options{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer plan.Close()

	// A pure tone in bin 3: its DFT is n at bin (n-3) under the e^{-2πi}
	// kernel convention, and 0 elsewhere.
	x := make([]complex128, n)
	for j := range x {
		ang := 2 * math.Pi * 3 * float64(j) / n
		x[j] = complex(math.Cos(ang), math.Sin(ang))
	}

	freq := make([]complex128, n)
	if err := plan.Forward(freq, x); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("|X[%d]| = %.1f (expect %d), |X[0]| = %.2g (expect 0)\n",
		n-3, abs(freq[n-3]), n, abs(freq[0]))

	// Roundtrip: Inverse(Forward(x)) == x.
	back := make([]complex128, n)
	if err := plan.Inverse(back, freq); err != nil {
		log.Fatal(err)
	}
	maxErr := 0.0
	for i := range back {
		if e := abs(back[i] - x[i]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("roundtrip max error: %.2g\n", maxErr)

	// What did the generator build?
	fmt.Printf("\nplan uses %d workers (parallel: %v)\n", plan.Workers(), plan.IsParallel())
	fmt.Printf("factorization: %s\n", plan.Tree())
	fmt.Printf("\nSPL formula (the multicore Cooley-Tukey FFT, formula (14) of the paper):\n  %s\n", plan.Formula())
	fmt.Printf("\nderivation by the rewriting system:\n%s\n", plan.Derivation())
}

func abs(v complex128) float64 {
	return math.Hypot(real(v), imag(v))
}
