// Multidimensional DFT: a 2D transform by the row-column method. The paper
// notes that multidimensional transforms are tensor products of 1D DFTs
// (DFT_{r×c} = DFT_r ⊗ DFT_c), so the machinery extends directly: transform
// every row, then every column.
//
// The example low-pass filters an image-like 2D field in the frequency
// domain and verifies the 2D roundtrip and the tensor-product identity
// against a direct 2D DFT on a small block.
//
// Run with:  go run ./examples/multidim
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"

	"spiralfft"
)

func main() {
	const rows, cols = 256, 512

	// A smooth field plus high-frequency texture.
	img := make([][]complex128, rows)
	for r := range img {
		img[r] = make([]complex128, cols)
		for c := range img[r] {
			v := math.Sin(2*math.Pi*3*float64(r)/rows)*math.Cos(2*math.Pi*5*float64(c)/cols) +
				0.3*math.Sin(2*math.Pi*60*float64(r)/rows+2*math.Pi*100*float64(c)/cols)
			img[r][c] = complex(v, 0)
		}
	}

	rowPlan, err := spiralfft.NewPlan(cols, &spiralfft.Options{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer rowPlan.Close()
	colPlan, err := spiralfft.NewPlan(rows, &spiralfft.Options{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer colPlan.Close()

	orig := clone2D(img)

	// Forward 2D: rows then columns.
	fft2D(img, rowPlan, colPlan, false)

	// Low-pass: keep only bins within radius 16 of DC (with wraparound).
	kept, zeroed := 0, 0
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			dr := min(r, rows-r)
			dc := min(c, cols-c)
			if dr*dr+dc*dc > 16*16 {
				img[r][c] = 0
				zeroed++
			} else {
				kept++
			}
		}
	}

	// Inverse 2D.
	fft2D(img, rowPlan, colPlan, true)

	// The low-frequency component must survive almost exactly; the texture
	// (bins 60, 100 — outside the radius) must be gone.
	energyBefore := energy(orig)
	energyAfter := energy(img)
	fmt.Printf("2D field %dx%d: kept %d bins, zeroed %d\n", rows, cols, kept, zeroed)
	fmt.Printf("energy before %.1f, after low-pass %.1f (texture removed)\n", energyBefore, energyAfter)
	if energyAfter >= energyBefore || energyAfter < 0.5*energyBefore {
		log.Fatal("low-pass energy ratio implausible")
	}

	// Verify the tensor-product identity on a small block: the row-column
	// 2D DFT equals the direct 2D DFT definition.
	verifyTensorIdentity()
	fmt.Println("row-column 2D DFT verified against the direct definition")
}

// fft2D transforms every row, then every column, in place.
func fft2D(a [][]complex128, rowPlan, colPlan *spiralfft.Plan, inverse bool) {
	rows := len(a)
	cols := len(a[0])
	apply := func(p *spiralfft.Plan, dst, src []complex128) {
		var err error
		if inverse {
			err = p.Inverse(dst, src)
		} else {
			err = p.Forward(dst, src)
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	for r := 0; r < rows; r++ {
		apply(rowPlan, a[r], a[r])
	}
	col := make([]complex128, rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			col[r] = a[r][c]
		}
		apply(colPlan, col, col)
		for r := 0; r < rows; r++ {
			a[r][c] = col[r]
		}
	}
}

func verifyTensorIdentity() {
	const r, c = 8, 16
	a := make([][]complex128, r)
	for i := range a {
		a[i] = make([]complex128, c)
		for j := range a[i] {
			a[i][j] = complex(math.Sin(float64(3*i+j)), math.Cos(float64(i-2*j)))
		}
	}
	rowPlan, _ := spiralfft.NewPlan(c, nil)
	colPlan, _ := spiralfft.NewPlan(r, nil)
	got := clone2D(a)
	fft2D(got, rowPlan, colPlan, false)
	for k := 0; k < r; k++ {
		for l := 0; l < c; l++ {
			var want complex128
			for i := 0; i < r; i++ {
				for j := 0; j < c; j++ {
					ang := -2 * math.Pi * (float64(k*i)/r + float64(l*j)/c)
					want += cmplx.Exp(complex(0, ang)) * a[i][j]
				}
			}
			if cmplx.Abs(got[k][l]-want) > 1e-8 {
				log.Fatalf("2D mismatch at (%d,%d): %v vs %v", k, l, got[k][l], want)
			}
		}
	}
}

func clone2D(a [][]complex128) [][]complex128 {
	out := make([][]complex128, len(a))
	for i := range a {
		out[i] = append([]complex128(nil), a[i]...)
	}
	return out
}

func energy(a [][]complex128) float64 {
	s := 0.0
	for _, row := range a {
		for _, v := range row {
			s += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
