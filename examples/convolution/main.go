// Convolution: fast polynomial multiplication via the convolution theorem.
//
// Multiplying two polynomials of degree < d is a linear convolution of their
// coefficient vectors, which the DFT turns into a pointwise product:
//
//	a·b = IDFT( DFT(a) ⊙ DFT(b) )   (zero-padded to length ≥ 2d-1)
//
// This example multiplies two large random polynomials with the library's
// parallel plans and verifies the result against the O(d²) schoolbook
// product.
//
// Run with:  go run ./examples/convolution
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"spiralfft"
)

func main() {
	const d = 3000 // polynomial degree bound (coefficients 0..d-1)

	a := randomPoly(d, 1)
	b := randomPoly(d, 2)

	// FFT length: next size the parallel plan likes (power of two ≥ 2d-1).
	n := 1
	for n < 2*d-1 {
		n *= 2
	}

	plan, err := spiralfft.NewPlan(n, &spiralfft.Options{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer plan.Close()
	fmt.Printf("convolving two degree-%d polynomials with a %d-point plan (%d workers)\n",
		d-1, n, plan.Workers())

	start := time.Now()
	fa := make([]complex128, n)
	fb := make([]complex128, n)
	copy(fa, toComplex(a, n))
	copy(fb, toComplex(b, n))
	if err := plan.Forward(fa, fa); err != nil {
		log.Fatal(err)
	}
	if err := plan.Forward(fb, fb); err != nil {
		log.Fatal(err)
	}
	for i := range fa {
		fa[i] *= fb[i]
	}
	if err := plan.Inverse(fa, fa); err != nil {
		log.Fatal(err)
	}
	fftTime := time.Since(start)

	// Schoolbook reference.
	start = time.Now()
	ref := make([]float64, 2*d-1)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			ref[i+j] += a[i] * b[j]
		}
	}
	naiveTime := time.Since(start)

	maxErr := 0.0
	for i := range ref {
		if e := math.Abs(real(fa[i]) - ref[i]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("FFT convolution: %v, schoolbook: %v (%.1fx)\n", fftTime, naiveTime,
		float64(naiveTime)/float64(fftTime))
	fmt.Printf("max coefficient error: %.3g (coefficients up to ~%.0f)\n", maxErr, maxAbs(ref))
	if maxErr > 1e-6*maxAbs(ref) {
		log.Fatal("convolution mismatch")
	}
	fmt.Println("convolution verified against the schoolbook product")
}

func randomPoly(d int, seed uint64) []float64 {
	p := make([]float64, d)
	s := seed*2862933555777941757 + 3037000493
	for i := range p {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		p[i] = float64(int64(s>>11))/float64(1<<52) - 1
	}
	return p
}

func toComplex(p []float64, n int) []complex128 {
	out := make([]complex128, n)
	for i, v := range p {
		out[i] = complex(v, 0)
	}
	return out
}

func maxAbs(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
