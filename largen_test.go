package spiralfft_test

import (
	"math"
	"math/cmplx"
	"testing"

	fft "spiralfft"
	"spiralfft/internal/complexvec"
)

// Large-N correctness without an O(N²) oracle: at the sizes the four-step
// tier serves, neither the naive DFT nor a per-element reference table is
// affordable, so correctness rests on analytic identities — impulse response
// (DFT δ = all-ones), single-tone response (DFT of exp(2πi·f·j/n) is n·δ_f),
// Parseval (Σ|X|² = n·Σ|x|² for the unnormalized Forward), and the
// Forward→Inverse round trip. Each test forces the tier via
// Options.LargeNThreshold so the identities exercise the four-step schedule
// specifically, and PlannerFixed keeps planning deterministic and fast.

// largeNPlan builds a fixed-planner plan with the four-step tier forced on
// at size n, failing the test if the tier did not engage.
func largeNPlan(t *testing.T, n int) *fft.Plan {
	t.Helper()
	p, err := fft.NewPlan(n, &fft.Options{LargeNThreshold: n})
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsFourStep() {
		p.Close()
		t.Fatalf("n=%d plan did not take the four-step tier: %s", n, p.Tree())
	}
	return p
}

// largeNSizes returns the sizes under test: 2^20 always, 2^22 unless -short.
func largeNSizes(t *testing.T) []int {
	if testing.Short() {
		return []int{1 << 20}
	}
	return []int{1 << 20, 1 << 22}
}

func TestLargeNImpulse(t *testing.T) {
	for _, n := range largeNSizes(t) {
		p := largeNPlan(t, n)
		x := make([]complex128, n)
		x[0] = 1
		y := make([]complex128, n)
		if err := p.Forward(y, x); err != nil {
			p.Close()
			t.Fatal(err)
		}
		worst := 0.0
		for _, v := range y {
			if d := cmplx.Abs(v - 1); d > worst {
				worst = d
			}
		}
		p.Close()
		if worst > 1e-9 {
			t.Errorf("n=%d: impulse response deviates from all-ones by %g", n, worst)
		}
	}
}

func TestLargeNSingleTone(t *testing.T) {
	for _, n := range largeNSizes(t) {
		p := largeNPlan(t, n)
		// A pure tone at a bin that is not aligned with either four-step
		// factor, so its energy crosses both transposes.
		f := n/3 + 1
		x := make([]complex128, n)
		for j := range x {
			s, c := math.Sincos(2 * math.Pi * float64(f) * float64(j) / float64(n))
			x[j] = complex(c, s)
		}
		y := make([]complex128, n)
		if err := p.Forward(y, x); err != nil {
			p.Close()
			t.Fatal(err)
		}
		p.Close()
		if d := cmplx.Abs(y[f] - complex(float64(n), 0)); d > 1e-6*float64(n) {
			t.Errorf("n=%d: tone bin %d off by %g", n, f, d)
		}
		// Every other bin is zero; sample a spread instead of all N.
		for i := 1; i < 4096; i++ {
			bin := (f + i*(n/4096)) % n
			if bin == f {
				continue
			}
			if d := cmplx.Abs(y[bin]); d > 1e-6*float64(n) {
				t.Errorf("n=%d: leakage %g at bin %d", n, d, bin)
			}
		}
	}
}

func TestLargeNParseval(t *testing.T) {
	for _, n := range largeNSizes(t) {
		p := largeNPlan(t, n)
		x := complexvec.Random(n, 21)
		y := make([]complex128, n)
		if err := p.Forward(y, x); err != nil {
			p.Close()
			t.Fatal(err)
		}
		p.Close()
		var ex, ey float64
		for i := range x {
			ex += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			ey += real(y[i])*real(y[i]) + imag(y[i])*imag(y[i])
		}
		if rel := math.Abs(ey-float64(n)*ex) / (float64(n) * ex); rel > 1e-10 {
			t.Errorf("n=%d: Parseval violated, relative energy error %g", n, rel)
		}
	}
}

func TestLargeNRoundTrip(t *testing.T) {
	for _, n := range largeNSizes(t) {
		p := largeNPlan(t, n)
		x := complexvec.Random(n, 22)
		y := make([]complex128, n)
		z := make([]complex128, n)
		if err := p.Forward(y, x); err != nil {
			p.Close()
			t.Fatal(err)
		}
		if err := p.Inverse(z, y); err != nil {
			p.Close()
			t.Fatal(err)
		}
		p.Close()
		if e := complexvec.RelError(z, x); e > 1e-9 {
			t.Errorf("n=%d: Forward→Inverse round-trip error %g", n, e)
		}
	}
}

// The tier agrees with the tree planner where both are affordable: at a
// forced moderate size the four-step Forward matches the ordinary plan to
// rounding (generated twiddle rows differ from tabulated ones in the last
// ulp, so bit identity is not required).
func TestLargeNMatchesTreePlanner(t *testing.T) {
	const n = 1 << 16
	fs := largeNPlan(t, n)
	defer fs.Close()
	tree, err := fft.NewPlan(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	if tree.IsFourStep() {
		t.Fatalf("default plan at n=%d unexpectedly took the large-N tier", n)
	}
	x := complexvec.Random(n, 23)
	got := make([]complex128, n)
	want := make([]complex128, n)
	if err := fs.Forward(got, x); err != nil {
		t.Fatal(err)
	}
	if err := tree.Forward(want, x); err != nil {
		t.Fatal(err)
	}
	if e := complexvec.RelError(got, want); e > 1e-12 {
		t.Errorf("four-step vs tree planner relative error %g", e)
	}
}

// A negative threshold disables the tier outright.
func TestLargeNThresholdDisable(t *testing.T) {
	p, err := fft.NewPlan(1<<20, &fft.Options{LargeNThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.IsFourStep() {
		t.Error("LargeNThreshold=-1 still engaged the four-step tier")
	}
}

// Parallel four-step plans agree with sequential ones and report their shape.
func TestLargeNParallelPlan(t *testing.T) {
	const n = 1 << 18
	seq := largeNPlan(t, n)
	defer seq.Close()
	par, err := fft.NewPlan(n, &fft.Options{Workers: 2, LargeNThreshold: n})
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	if !par.IsFourStep() {
		t.Fatalf("parallel plan did not take the four-step tier: %s", par.Tree())
	}
	if !par.IsParallel() {
		t.Skip("no admissible parallel four-step split on this size")
	}
	if par.Workers() != 2 {
		t.Errorf("Workers() = %d, want 2", par.Workers())
	}
	x := complexvec.Random(n, 24)
	got := make([]complex128, n)
	want := make([]complex128, n)
	if err := par.Forward(got, x); err != nil {
		t.Fatal(err)
	}
	if err := seq.Forward(want, x); err != nil {
		t.Fatal(err)
	}
	// Same schedule, different worker partition only — the outputs of the
	// same split are bit-identical; across possibly different tuned splits
	// rounding-level agreement is the contract.
	if e := complexvec.RelError(got, want); e > 1e-12 {
		t.Errorf("parallel vs sequential four-step relative error %g", e)
	}
}
